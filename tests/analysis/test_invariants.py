"""Mutation tests for the invariant checker.

Each test seeds one specific corruption into an otherwise-healthy
netlist — bypassing the editing API, the way a buggy transform would —
and asserts the checker reports exactly the expected rule id.  The
clean-circuit tests pin the other direction: zero diagnostics on the
bundled circuits, in both full and dirty-region mode.
"""

import pytest

from repro.analysis import (
    ERROR, RULES, InvariantChecker, InvariantViolation, WARNING,
    assert_clean, check_netlist,
)
from repro.circuits.registry import build
from repro.library import mcnc_like
from repro.netlist.edit import prune_dangling
from repro.netlist.netlist import Branch, Netlist, NetlistError


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


def _adder() -> Netlist:
    """A tiny healthy netlist with reconvergent fanout."""
    net = Netlist("toy")
    for pi in ("a", "b", "c"):
        net.add_pi(pi)
    net.add_gate("ab", "AND", ["a", "b"])
    net.add_gate("bc", "OR", ["b", "c"])
    net.add_gate("s", "XOR", ["ab", "bc"])
    net.add_gate("t", "NAND", ["ab", "s"])
    net.set_pos(["s", "t"])
    return net


# ----------------------------------------------------------------------
# clean circuits produce no diagnostics
# ----------------------------------------------------------------------
def test_clean_toy_netlist_is_clean(lib):
    report = check_netlist(_adder())
    assert report.ok() and not report.warnings, report.format()


@pytest.mark.parametrize("name", ["C432", "C880"])
def test_clean_circuit_full_check_is_silent(name, lib):
    net = build(name, small=True)
    prune_dangling(net)  # the C432 generator leaves one dead inverter
    lib.rebind(net)
    net.fanout_map()
    net.topo_order()  # populate caches so cache rules actually run
    report = check_netlist(net, lib)
    assert report.ok() and not report.warnings, report.format()


def test_clean_circuit_scoped_check_is_silent(lib):
    net = build("C880", small=True)
    lib.rebind(net)
    net.fanout_map()
    net.topo_order()
    scope = set(list(net.gates)[:10])
    report = check_netlist(net, lib, scope=scope)
    assert report.ok() and not report.warnings, report.format()


def test_assert_clean_passes_and_returns_report():
    report = assert_clean(_adder())
    assert report.ok()


# ----------------------------------------------------------------------
# seeded corruptions -> exact rule ids
# ----------------------------------------------------------------------
def test_dropped_fanout_branch_is_caught():
    net = _adder()
    fan = net.fanout_map()
    assert any(b == Branch("s", 0) for b in fan["ab"])
    fan["ab"] = [b for b in fan["ab"] if b != Branch("s", 0)]
    report = check_netlist(net)
    assert "fanout-consistency" in report.rule_ids()


def test_phantom_fanout_branch_is_caught():
    net = _adder()
    net.fanout_map()["c"].append(Branch("ab", 0))
    report = check_netlist(net)
    assert "fanout-consistency" in report.rule_ids()


def test_spliced_cycle_is_caught_full_and_scoped():
    net = _adder()
    net.gates["ab"].inputs[0] = "t"  # ab -> s -> t -> ab
    report = check_netlist(net)
    assert "cycle" in report.rule_ids()
    scoped = check_netlist(net, scope={"ab"})
    assert "cycle" in scoped.rule_ids()


def test_orphan_gate_input_is_caught():
    net = _adder()
    net.gates["bc"].inputs[1] = "ghost"
    report = check_netlist(net)
    assert "dangling-input" in report.rule_ids()
    diag = [d for d in report.errors if d.rule == "dangling-input"][0]
    assert "ghost" in diag.signals


def test_undriven_po_is_caught():
    net = _adder()
    net.add_po("ghost_po")
    report = check_netlist(net)
    assert "undriven-po" in report.rule_ids()


def test_stale_topo_cache_is_caught():
    net = _adder()
    stale = list(net.topo_order())
    # Mutate behind the cache's back: retarget s's pin 1 from bc to c.
    net.gates["s"].inputs[1] = "c"
    net.gates["bc"].inputs[0] = "s"  # now bc depends on s: old order invalid
    net._topo = stale
    net._fanouts = None
    report = check_netlist(net)
    assert "topo-coherence" in report.rule_ids()


def test_topo_cache_with_missing_entry_is_caught():
    net = _adder()
    net.topo_order()
    net._topo = [s for s in net._topo if s != "bc"]
    report = check_netlist(net)
    assert "topo-coherence" in report.rule_ids()


def test_arity_corruption_is_caught():
    net = _adder()
    net.gates["s"].inputs.append("c")  # XOR with 3 inputs
    net.invalidate()
    report = check_netlist(net)
    assert "arity" in report.rule_ids()


def test_floating_signal_is_warning_not_error():
    net = _adder()
    net.add_gate("dead", "AND", ["a", "b"])
    report = check_netlist(net)
    assert report.ok()  # warnings do not fail assert_clean
    assert "floating-signal" in [d.rule for d in report.warnings]
    assert "po-unreachable" in [d.rule for d in report.warnings]


def test_pi_gate_overlap_is_caught():
    net = _adder()
    net._pi_set.add("ab")
    net.pis.append("ab")
    report = check_netlist(net)
    assert "pi-overlap" in report.rule_ids()


# ----------------------------------------------------------------------
# library cell rules
# ----------------------------------------------------------------------
def test_unknown_cell_binding_is_caught(lib):
    net = _adder()
    net.gates["ab"].cell = "no_such_cell"
    report = check_netlist(net, lib)
    assert "cell-binding" in report.rule_ids()


def test_cell_arity_mismatch_is_caught(lib):
    net = _adder()
    net.gates["ab"].cell = "nand3"  # 2-input gate bound to 3-input cell
    report = check_netlist(net, lib)
    assert "cell-arity" in report.rule_ids()


def test_cell_function_mismatch_is_caught(lib):
    net = _adder()
    net.gates["ab"].cell = "or2"  # AND gate bound to an OR cell
    report = check_netlist(net, lib)
    assert "cell-function" in report.rule_ids()


def test_cell_rules_skipped_without_library(lib):
    net = _adder()
    net.gates["ab"].cell = "no_such_cell"
    assert check_netlist(net).ok()  # no library -> binding not checkable


# ----------------------------------------------------------------------
# diagnostics & rule registry plumbing
# ----------------------------------------------------------------------
def test_rule_registry_is_complete():
    expected = {
        "cycle", "dangling-input", "undriven-po", "arity",
        "cell-binding", "cell-arity", "cell-function", "pi-overlap",
        "fanout-consistency", "topo-coherence",
        "floating-signal", "po-unreachable",
    }
    assert expected <= set(RULES)
    for spec in RULES.values():
        assert spec.severity in (ERROR, WARNING)
        assert spec.description


def test_rule_subset_selection():
    net = _adder()
    net.gates["bc"].inputs[1] = "ghost"
    net.add_po("ghost_po")
    report = check_netlist(net, rules={"undriven-po"})
    assert report.rule_ids() == ["undriven-po"]


def test_invariant_violation_formats_diagnostics():
    net = _adder()
    net.gates["bc"].inputs[1] = "ghost"
    with pytest.raises(InvariantViolation) as exc:
        assert_clean(net, context="unit-test")
    msg = str(exc.value)
    assert "dangling-input" in msg and "unit-test" in msg
    assert exc.value.diagnostics


def test_scoped_check_skips_whole_net_rules():
    net = _adder()
    checker = InvariantChecker(net)
    # po-unreachable is full-net only; scoped mode must not crash on it
    report = checker.check(scope={"ab"})
    assert report.ok()


# ----------------------------------------------------------------------
# satellite (a): add_gate eager validation
# ----------------------------------------------------------------------
def test_add_gate_rejects_bad_arity():
    net = Netlist()
    net.add_pi("a")
    with pytest.raises(NetlistError, match="'g'.*INV"):
        net.add_gate("g", "INV", ["a", "a"])


def test_add_gate_rejects_self_loop():
    net = Netlist()
    net.add_pi("a")
    with pytest.raises(NetlistError, match="self-loop"):
        net.add_gate("g", "AND", ["a", "g"])


def test_add_gate_rejects_duplicate_signal():
    net = Netlist()
    net.add_pi("a")
    net.add_gate("g", "AND", ["a", "a"])  # duplicate *inputs* stay legal
    with pytest.raises(NetlistError, match="already exists"):
        net.add_gate("g", "INV", ["a"])
    with pytest.raises(NetlistError, match="already exists"):
        net.add_pi("g")
