"""Acceptance tests for the static funnel stage and check-mode cost.

From the issue: on C880 the static stage must discharge a nonzero
number of candidates before BPFS, the broker must receive strictly
fewer obligations than with the stage disabled, the final netlist must
be functionally identical with the stage on vs off and with 1 vs 4
proof workers, and ``check="off"`` must cost under 2% of a run (a
computed guard, like the disabled-observability one).
"""

import time

import pytest

from repro.circuits.registry import build
from repro.library import mcnc_like
from repro.obs import ObsConfig, strip_volatile
from repro.obs.export import funnel_counts
from repro.opt import GdoConfig, GdoStats, gdo_optimize
from repro.opt.engine import EngineContext
from repro.verify.equiv import check_equivalence


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


def _cfg(**kw):
    base = dict(
        n_words=8, verify_final=False, max_rounds=2,
        max_passes_per_phase=6, max_trials_per_pass=48,
        max_proofs_per_pass=32, proof_workers=1,
    )
    base.update(kw)
    return GdoConfig(**base)


def _run(lib, **kw):
    net = build("C880", small=True)
    lib.rebind(net)
    return gdo_optimize(net, lib, _cfg(**kw))


@pytest.fixture(scope="module")
def runs(lib):
    on = _run(lib, static_funnel=True, obs=ObsConfig.full())
    off = _run(lib, static_funnel=False, obs=ObsConfig.full())
    par = _run(lib, static_funnel=True, obs=ObsConfig.full(),
               proof_workers=4)
    return on, off, par


def test_static_stage_discharges_candidates(runs):
    on, off, _ = runs
    f_on = funnel_counts(on.stats.obs)
    f_off = funnel_counts(off.stats.obs)
    assert f_on["static_proved"] + f_on["static_refuted"] > 0, (
        f"static stage discharged nothing: {f_on}")
    assert f_on["static_proved"] == on.stats.static_proved
    assert f_on["static_refuted"] == on.stats.static_refuted
    # Funnel stays monotone and consistent.
    assert (f_on["static_proved"] + f_on["to_bpfs"]
            >= f_on["bpfs_survived"] >= f_on["proved"]
            >= f_on["committed"])
    # With the stage off the counters are hard zeros.
    assert f_off["static_proved"] == f_off["static_refuted"] == 0
    assert f_off["to_bpfs"] == f_off["bpfs_survived"]


def test_broker_receives_strictly_fewer_obligations(runs):
    on, off, _ = runs
    assert on.stats.proof.dispatched < off.stats.proof.dispatched, (
        f"stage on dispatched {on.stats.proof.dispatched}, "
        f"off dispatched {off.stats.proof.dispatched}")
    assert on.stats.proof.static_skips == on.stats.static_proved > 0
    assert off.stats.proof.static_skips == 0


def test_final_netlists_equivalent_stage_on_off(runs):
    on, off, _ = runs
    assert check_equivalence(on.net, off.net) is True


def test_workers_1_vs_4_identical_with_stage_on(runs):
    on, _, par = runs
    def fp(r):
        return (
            [(m.phase, m.kind, m.description) for m in r.stats.history],
            r.stats.delay_after, r.stats.area_after, sorted(r.net.gates),
        )
    assert fp(on) == fp(par)
    # Journal determinism: identical modulo volatile fields, including
    # the new "static" records.
    j_on = strip_volatile(on.stats.obs.journal_records)
    j_par = strip_volatile(par.stats.obs.journal_records)
    assert j_on == j_par
    statics = [r for r in j_on if r["type"] == "static"]
    assert statics and all(r["verdict"] in ("proved", "refuted")
                           for r in statics)


def test_check_off_overhead_under_two_percent(lib):
    """Computed guard: the ``check="off"`` early-return, called once
    per trial/undo/commit event, must cost <=2% of a run's wall time.
    Timing two full runs diverges by more than 2% from machine noise,
    so bound (events x per-call cost) against the measured run instead.
    """
    net = build("C880", small=True)
    lib.rebind(net)

    t0 = time.perf_counter()
    result = gdo_optimize(net.copy(), lib, _cfg())
    wall = time.perf_counter() - t0
    assert result.stats.checks_run == 0

    # Count the check sites an equivalent paranoid run would hit.
    paranoid = gdo_optimize(net.copy(), lib, _cfg(check="paranoid"))
    events = paranoid.stats.checks_run
    assert events > 0

    ctx = EngineContext(net.copy(), lib, _cfg(), GdoStats())
    try:
        reps = 100_000
        t0 = time.perf_counter()
        for _ in range(reps):
            ctx.check_invariants("trial", scope=None)
        per_call = (time.perf_counter() - t0) / reps
    finally:
        if ctx.broker is not None:
            ctx.broker.close()

    overhead = per_call * events
    assert overhead <= 0.02 * wall, (
        f"check=off would cost {overhead:.5f}s of a {wall:.3f}s run "
        f"({100 * overhead / wall:.2f}% > 2%): {events} events at "
        f"{1e9 * per_call:.0f}ns each"
    )
