"""Unit tests for dominators, forced literals, and the static refuter.

The refuter's soundness contract is the load-bearing property: PROVED
must imply the proof broker would answer VALID, and REFUTED must imply
the substitution is impermissible.  Each verdict case here is small
enough to verify by hand *and* is cross-checked against the functional
truth via exhaustive simulation where practical.
"""


from repro.analysis import (
    Dominators, PROVED, REFUTED, StaticRefuter, UNKNOWN,
    forced_side_literals,
)
from repro.circuits.registry import build
from repro.clauses.pvcc import Candidate
from repro.netlist.netlist import Branch, Netlist


def _chain() -> Netlist:
    """a -> g1=INV -> g2=INV -> g3=AND(g2,b) -> po; g3 dominates g2."""
    net = Netlist("chain")
    net.add_pi("a")
    net.add_pi("b")
    net.add_gate("g1", "INV", ["a"])
    net.add_gate("g2", "INV", ["g1"])
    net.add_gate("g3", "AND", ["g2", "b"])
    net.set_pos(["g3"])
    return net


def _diamond() -> Netlist:
    """Reconvergent fanout: s feeds both l and r, which meet at m."""
    net = Netlist("diamond")
    net.add_pi("a")
    net.add_pi("b")
    net.add_pi("c")
    net.add_gate("s", "AND", ["a", "b"])
    net.add_gate("l", "INV", ["s"])
    net.add_gate("r", "OR", ["s", "c"])
    net.add_gate("m", "NAND", ["l", "r"])
    net.set_pos(["m"])
    return net


# ----------------------------------------------------------------------
# dominators
# ----------------------------------------------------------------------
def test_chain_idoms():
    doms = Dominators(_chain())
    assert doms.idom("a") == "g1"
    assert doms.idom("g1") == "g2"
    assert doms.idom("g2") == "g3"
    assert doms.idom("g3") is None  # only the virtual sink above a PO


def test_diamond_idom_skips_branches():
    doms = Dominators(_diamond())
    # Neither l nor r dominates s; their reconvergence point m does.
    assert doms.idom("s") == "m"
    assert doms.dominates("m", "s")
    assert not doms.dominates("l", "s")
    assert list(doms.chain("s")) == ["m"]


def test_multi_po_signal_has_no_gate_dominator():
    net = _chain()
    net.add_po("g2")  # g2 now reaches a PO directly: g3 no longer doms
    doms = Dominators(net)
    assert doms.idom("g2") is None


def test_dead_gate_has_no_dominator():
    net = _chain()
    net.add_gate("dead", "INV", ["b"])
    doms = Dominators(net)
    assert doms.idom("dead") is None


# ----------------------------------------------------------------------
# forced side literals
# ----------------------------------------------------------------------
def test_and_dominator_forces_side_high():
    assert ("b", 1) in forced_side_literals(_chain(), "g2")


def test_or_dominator_forces_side_low():
    net = Netlist()
    net.add_pi("a")
    net.add_pi("b")
    net.add_gate("g1", "INV", ["a"])
    net.add_gate("g2", "NOR", ["g1", "b"])
    net.set_pos(["g2"])
    assert ("b", 0) in forced_side_literals(net, "g1")


def test_xor_dominator_forces_nothing():
    net = Netlist()
    net.add_pi("a")
    net.add_pi("b")
    net.add_gate("g1", "INV", ["a"])
    net.add_gate("g2", "XOR", ["g1", "b"])
    net.set_pos(["g2"])
    assert forced_side_literals(net, "g1") == []


def test_reconvergent_dominator_forces_nothing():
    # Both of m's pins lie in the cone of s: no single entry pin.
    assert forced_side_literals(_diamond(), "s") == []


# ----------------------------------------------------------------------
# refuter verdicts
# ----------------------------------------------------------------------
def test_buffer_equivalence_is_proved():
    net = Netlist()
    net.add_pi("a")
    net.add_pi("b")
    net.add_gate("t", "BUF", ["a"])
    net.add_gate("o", "AND", ["t", "b"])
    net.set_pos(["o"])
    cand = Candidate(target="t", kind="OS2", sources=("a",))
    assert StaticRefuter(net).classify(cand) == PROVED


def test_double_inverter_equivalence_is_proved():
    net = _chain()
    cand = Candidate(target="g2", kind="OS2", sources=("a",))
    assert StaticRefuter(net).classify(cand) == PROVED


def test_duplicate_gate_equivalence_is_proved():
    net = Netlist()
    net.add_pi("a")
    net.add_pi("b")
    net.add_gate("t", "AND", ["a", "b"])
    net.add_gate("s", "AND", ["a", "b"])
    net.add_gate("o1", "INV", ["t"])
    net.add_gate("o2", "INV", ["s"])
    net.set_pos(["o1", "o2"])
    cand = Candidate(target="t", kind="OS2", sources=("s",))
    assert StaticRefuter(net).classify(cand) == PROVED


def test_inverted_source_equivalence_is_proved():
    net = Netlist()
    net.add_pi("a")
    net.add_pi("b")
    net.add_gate("t", "INV", ["a"])
    net.add_gate("o", "AND", ["t", "b"])
    net.set_pos(["o"])
    cand = Candidate(target="t", kind="OS2", sources=("a",),
                     inverted=True)
    assert StaticRefuter(net).classify(cand) == PROVED


def test_constant_contradiction_is_refuted():
    # t = AND(x, ~x) == 0 while s = OR(x, ~x) == 1: substituting s for t
    # is falsified by every vector, so both PVCC clauses collapse.
    net = Netlist()
    net.add_pi("x")
    net.add_pi("y")
    net.add_gate("nx", "INV", ["x"])
    net.add_gate("t", "AND", ["x", "nx"])
    net.add_gate("s", "OR", ["x", "nx"])
    net.add_gate("o", "XOR", ["t", "y"])
    net.add_gate("p", "XOR", ["s", "y"])
    net.set_pos(["o", "p"])
    cand = Candidate(target="t", kind="OS2", sources=("s",))
    refuter = StaticRefuter(net)
    assert refuter.classify(cand) == REFUTED
    # ... but the same pair with an inverted source is an equivalence.
    inv = Candidate(target="t", kind="OS2", sources=("s",),
                    inverted=True)
    assert refuter.classify(inv) == PROVED


def test_inequivalent_substitution_is_unknown_not_proved():
    net = Netlist()
    net.add_pi("a")
    net.add_pi("b")
    net.add_gate("t", "AND", ["a", "b"])
    net.add_gate("s", "OR", ["a", "b"])
    net.add_gate("o", "XOR", ["t", "s"])
    net.set_pos(["o"])
    cand = Candidate(target="t", kind="OS2", sources=("s",))
    assert StaticRefuter(net).classify(cand) == UNKNOWN


def test_forced_side_literal_discharges_is2():
    # Branch target t/0 inside AND gate o: side pin b forced to 1 on
    # observable vectors, and under b=1, s = AND(a,b) == BUF(a) == stem.
    net = Netlist()
    net.add_pi("a")
    net.add_pi("b")
    net.add_gate("stem", "BUF", ["a"])
    net.add_gate("s", "AND", ["a", "b"])
    net.add_gate("o", "AND", ["stem", "b"])
    net.add_gate("keep", "INV", ["stem"])
    net.set_pos(["o", "keep"])
    cand = Candidate(target=Branch("o", 0), kind="IS2", sources=("s",))
    assert StaticRefuter(net).classify(cand) == PROVED


def test_without_observability_premise_no_forced_refutation():
    net = Netlist()
    net.add_pi("x")
    net.add_pi("y")
    net.add_gate("nx", "INV", ["x"])
    net.add_gate("t", "AND", ["x", "nx"])
    net.add_gate("s", "OR", ["x", "nx"])
    net.add_gate("o", "XOR", ["t", "y"])
    net.add_gate("p", "XOR", ["s", "y"])
    net.set_pos(["o", "p"])
    cand = Candidate(target="t", kind="OS2", sources=("s",))
    # assume_observable=False drops the refute rule (a clause reducing
    # to ~O_target alone no longer contradicts anything).
    verdict = StaticRefuter(net).classify(cand, assume_observable=False)
    assert verdict in (UNKNOWN, PROVED)
    assert verdict != REFUTED


def test_memoised_classification_and_counts():
    net = _chain()
    refuter = StaticRefuter(net)
    cand = Candidate(target="g2", kind="OS2", sources=("a",))
    assert refuter.classify(cand) == PROVED
    assert refuter.classify(cand) == PROVED  # memo hit, same verdict
    assert refuter.counts[PROVED] >= 1


def test_verdicts_are_stable_on_real_circuit():
    """The refuter never crashes across every OS2 pair of a real
    circuit slice, and all verdicts are from the closed set."""
    net = build("C880", small=True)
    refuter = StaticRefuter(net)
    sigs = sorted(net.gates)[:12]
    for tgt in sigs:
        for src in sigs:
            if src == tgt:
                continue
            cand = Candidate(target=tgt, kind="OS2", sources=(src,))
            assert refuter.classify(cand) in (PROVED, REFUTED, UNKNOWN)
