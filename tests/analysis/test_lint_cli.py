"""The ``python -m repro.analysis`` lint CLI: exit codes and output."""

import os

import pytest

from repro.analysis.__main__ import main

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..",
                        "examples", "circuits")


def _example(name):
    path = os.path.join(EXAMPLES, name)
    assert os.path.exists(path), f"bundled example missing: {path}"
    return path


def test_clean_bench_exits_zero(capsys):
    assert main([_example("c17.bench")]) == 0
    out = capsys.readouterr().out
    assert "c17.bench: 6 gates, clean" in out


def test_clean_blif_exits_zero_strict(capsys):
    assert main([_example("c432_small.blif"), "--strict"]) == 0
    assert "clean" in capsys.readouterr().out


def test_corrupt_bench_exits_nonzero(tmp_path, capsys):
    # The loader itself rejects dangling signals: the CLI reports it as
    # a parse error on stderr and still exits nonzero.
    bad = tmp_path / "bad.bench"
    bad.write_text(
        "INPUT(a)\nOUTPUT(y)\ny = NAND(a, ghost)\n"
    )
    assert main([str(bad)]) == 1
    assert "parse error" in capsys.readouterr().err


def test_checker_error_exits_nonzero(tmp_path, capsys):
    # A file that parses but violates a checker-only invariant: a gate
    # bound to no PO-reaching path is a warning, but a mapped .blif
    # whose .gate uses the wrong cell arity is caught by the parser, so
    # exercise the report path with an error seeded post-parse via the
    # undriven-po rule (an OUTPUT the parser tolerates when quiet).
    bad = tmp_path / "bad.blif"
    bad.write_text(
        ".model bad\n.inputs a b\n.outputs y\n"
        ".names a b y\n11 1\n"
        ".names a dead\n0 1\n"
        ".end\n"
    )
    assert main([str(bad), "--strict"]) == 1
    out = capsys.readouterr().out
    assert "floating-signal" in out


def test_floating_gate_fails_only_in_strict(tmp_path, capsys):
    warn = tmp_path / "warn.bench"
    warn.write_text(
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
        "y = NAND(a, b)\ndead = NOT(a)\n"
    )
    assert main([str(warn)]) == 0
    assert main([str(warn), "--strict"]) == 1
    out = capsys.readouterr().out
    assert "floating-signal" in out


def test_parse_error_exits_nonzero(tmp_path, capsys):
    junk = tmp_path / "junk.bench"
    junk.write_text("this is not bench\n")
    assert main([str(junk)]) == 1
    assert "parse error" in capsys.readouterr().err


def test_clean_verilog_exits_zero(capsys):
    # The CLI lints every format the io dispatcher registers, so the
    # structural-verilog example works the same as .bench/.blif.
    assert main([_example("c17.v"), "--strict"]) == 0
    out = capsys.readouterr().out
    assert "c17.v: 6 gates, clean" in out


def test_bad_verilog_is_parse_error(tmp_path, capsys):
    other = tmp_path / "net.v"
    other.write_text("module m; endmodule\n")
    assert main([str(other)]) == 1
    assert "parse error" in capsys.readouterr().err


def test_unsupported_extension_is_parse_error(tmp_path, capsys):
    other = tmp_path / "net.xyz"
    other.write_text("whatever\n")
    assert main([str(other)]) == 1
    assert "parse error" in capsys.readouterr().err


def test_rule_filter(tmp_path):
    warn = tmp_path / "warn.bench"
    warn.write_text(
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
        "y = NAND(a, b)\ndead = NOT(a)\n"
    )
    # Restricting to an unrelated rule hides the floating gate.
    assert main([str(warn), "--strict", "--rules", "cycle"]) == 0
    assert main([str(warn), "--strict",
                 "--rules", "cycle,floating-signal"]) == 1


def test_unknown_rule_id_is_usage_error():
    with pytest.raises(SystemExit) as exc:
        main([_example("c17.bench"), "--rules", "no-such-rule"])
    assert exc.value.code == 2


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "fanout-consistency" in out and "cycle" in out


def test_no_circuits_is_usage_error():
    with pytest.raises(SystemExit) as exc:
        main([])
    assert exc.value.code == 2
