"""GdoConfig.flat must change throughput, never results.

Acceptance tests for the flat-kernel wiring: flat on/off and workers
1≡4 commit the identical modification sequence with byte-identical
journals, counters stay comparable between modes, the per-call fallback
to the dict engine works mid-run, and the PI-fanout-root trial trigger
(previously a silent event) is counted and journaled at a pinned,
engine-mode-independent rate.
"""

import pytest

from repro.circuits.registry import build
from repro.flat.view import FlatView, FlatViewError
from repro.library import mcnc_like
from repro.netlist.edit import structural_signature
from repro.obs import ObsConfig
from repro.obs.journal import strip_volatile
from repro.opt import GdoConfig, gdo_optimize
from repro.opt.report import format_result


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


def _cfg(flat, workers=1, journal=True):
    return GdoConfig(
        n_words=8,
        flat=flat,
        proof_workers=workers,
        verify_final=False,
        max_rounds=2,
        max_passes_per_phase=6,
        max_trials_per_pass=48,
        max_proofs_per_pass=32,
        obs=ObsConfig(journal=journal, metrics=True),
    )


def _run(name, cfg, lib):
    net = build(name, small=True)
    lib.rebind(net)
    return gdo_optimize(net, lib, cfg)


def _fingerprint(result):
    return (
        [(m.phase, m.kind, m.description, m.delay_after, m.area_after)
         for m in result.stats.history],
        result.stats.delay_after,
        result.stats.area_after,
        structural_signature(result.net),
    )


def _journal(result):
    return strip_volatile(result.stats.obs.journal_records)


@pytest.fixture(scope="module")
def c880_runs(lib):
    return {
        "flat": _run("C880", _cfg(flat=True), lib),
        "dict": _run("C880", _cfg(flat=False), lib),
        "flat_w4": _run("C880", _cfg(flat=True, workers=4), lib),
    }


def test_flat_on_off_equivalence_on_c880(c880_runs):
    flat, dict_ = c880_runs["flat"], c880_runs["dict"]
    assert flat.stats.history, "no modifications; equivalence is vacuous"
    assert _fingerprint(flat) == _fingerprint(dict_)
    assert _journal(flat) == _journal(dict_)


def test_flat_counters_populated_and_comparable(c880_runs):
    flat, dict_ = c880_runs["flat"], c880_runs["dict"]
    assert flat.stats.engine.flat_hits > 0
    assert flat.stats.engine.flat_fallbacks == 0
    assert dict_.stats.engine.flat_hits == 0
    # The batch path must not change *what* is computed, only how.
    e_f, e_d = flat.stats.engine, dict_.stats.engine
    assert e_f.obs_rows_computed == e_d.obs_rows_computed
    assert e_f.sta_scratch == e_d.sta_scratch
    assert e_f.sta_pi_root == e_d.sta_pi_root


def test_flat_workers_journal_identity(c880_runs):
    flat, w4 = c880_runs["flat"], c880_runs["flat_w4"]
    assert _fingerprint(flat) == _fingerprint(w4)
    assert _journal(flat) == _journal(w4)
    assert w4.stats.proofs_attempted > 0


def test_report_and_export_show_flat_section(c880_runs, lib):
    from repro.obs.export import gdo_entry, validate_gdo_entry

    flat = c880_runs["flat"]
    text = format_result(flat, lib)
    assert "flat kernels:" in text
    entry = gdo_entry(flat, key="test")
    validate_gdo_entry(entry)
    assert entry["flat"]["hits"] == flat.stats.engine.flat_hits
    assert entry["flat"]["fallbacks"] == flat.stats.engine.flat_fallbacks
    dict_text = format_result(c880_runs["dict"], lib)
    assert "flat kernels:" not in dict_text


def test_flat_fallback_path_is_exercised(lib, monkeypatch):
    """Every FlatView.build failing mid-run must degrade per call to the
    dict engine — same results, fallbacks counted."""
    def boom(cls, net, library=None):
        raise FlatViewError("forced by test")

    monkeypatch.setattr(FlatView, "build", classmethod(boom))
    broken = _run("C880", _cfg(flat=True), lib)
    monkeypatch.undo()
    reference = _run("C880", _cfg(flat=True), lib)
    assert _fingerprint(broken) == _fingerprint(reference)
    assert _journal(broken) == _journal(reference)
    assert broken.stats.engine.flat_fallbacks > 0
    assert broken.stats.engine.flat_hits == 0


# Pinned on C432-small under _cfg: the count is a pure function of the
# trial sequence, so any engine mode / flat setting must reproduce it.
_C432_PI_ROOT_TRIALS = 215


@pytest.mark.parametrize("incremental", [True, False])
def test_pi_root_trigger_pinned_on_c432(lib, incremental):
    cfg = _cfg(flat=True)
    cfg.incremental = incremental
    result = _run("C432", cfg, lib)
    assert result.stats.engine.sta_pi_root == _C432_PI_ROOT_TRIALS
    records = [r for r in result.stats.obs.journal_records
               if r.get("type") == "sta_pi_root"]
    assert len(records) == _C432_PI_ROOT_TRIALS
    assert all(r["dirty"] > 0 for r in records)
    if incremental:
        # The fix keeps PI-root trials on the dirty-cone path: they are
        # counted, not silently recomputed from scratch.
        assert result.stats.engine.sta_incremental >= _C432_PI_ROOT_TRIALS
