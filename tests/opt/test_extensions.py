"""Tests for the companion optimizations: RAR, fanout buffering, and
reporting."""

import pytest

from repro.library import mcnc_like
from repro.netlist import Netlist
from repro.opt import (
    GdoConfig, gdo_optimize, optimize_fanout, rar_optimize,
    compare_report, critical_path_report, format_result,
)
from repro.verify import check_equivalence


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


def redundant_net():
    """Bridging candidates exist and absorption makes logic removable."""
    net = Netlist("rar")
    for pi in "abcd":
        net.add_pi(pi)
    net.add_gate("t", "AND", ["a", "b"])
    net.add_gate("u", "OR", ["a", "t"])       # u == a (t-branch redundant)
    net.add_gate("v", "AND", ["u", "c"])
    net.add_gate("w", "OR", ["v", "d"])
    net.set_pos(["w", "u"])
    return net


# ----------------------------------------------------------------------
# RAR
# ----------------------------------------------------------------------
def test_rar_removes_existing_redundancy(lib):
    net = redundant_net()
    stats = rar_optimize(net, library=lib, max_iterations=3)
    assert stats.equivalent is True
    assert stats.removals >= 1
    assert stats.literals_after < stats.literals_before
    assert check_equivalence(net, stats.net)


def test_rar_input_untouched(lib):
    net = redundant_net()
    before = net.copy()
    rar_optimize(net, library=lib, max_iterations=2)
    assert net.num_gates == before.num_gates
    assert check_equivalence(net, before)


def test_rar_on_irredundant_net(lib):
    net = Netlist("clean")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("y", "XOR", ["a", "b"])
    net.set_pos(["y"])
    stats = rar_optimize(net, library=lib, max_iterations=2)
    assert stats.equivalent is True
    assert stats.literals_after == stats.literals_before


def test_rar_stats_fields(lib):
    stats = rar_optimize(redundant_net(), library=lib, max_iterations=1)
    assert stats.gates_before > 0
    assert 0.0 <= stats.literal_reduction <= 1.0
    assert stats.cpu_seconds >= 0.0


# ----------------------------------------------------------------------
# fanout optimization
# ----------------------------------------------------------------------
def high_fanout_net(n_sinks=10):
    """One slow driver feeding many sinks, only one of them critical."""
    net = Netlist("fan")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("hub", "AND", ["a", "b"])
    # critical sink: a long inverter chain
    prev = "hub"
    for k in range(5):
        prev = net.add_gate(f"c{k}", "INV", [prev])
    net.add_po(prev)
    # many non-critical sinks
    for k in range(n_sinks):
        net.add_gate(f"s{k}", "INV", ["hub"])
        net.add_po(f"s{k}")
    return net


def test_fanout_buffering_reduces_delay(lib):
    net = high_fanout_net()
    lib.rebind(net)
    stats = optimize_fanout(net, lib)
    assert stats.buffers_added >= 1
    assert stats.delay_after < stats.delay_before
    assert check_equivalence(net, stats.net)


def test_fanout_noop_on_low_fanout(lib):
    net = Netlist("low")
    net.add_pi("a")
    net.add_gate("y", "INV", ["a"])
    net.set_pos(["y"])
    lib.rebind(net)
    stats = optimize_fanout(net, lib)
    assert stats.buffers_added == 0
    assert stats.delay_after == pytest.approx(stats.delay_before)


def test_fanout_composes_with_gdo(lib):
    """The deferred extension composes: GDO then fanout buffering."""
    net = high_fanout_net(8)
    lib.rebind(net)
    gdo = gdo_optimize(net, lib, GdoConfig(n_words=4, verify_words=8,
                                           max_rounds=3))
    stats = optimize_fanout(gdo.net, lib)
    assert stats.delay_after <= gdo.stats.delay_after + 1e-6
    assert check_equivalence(net, stats.net)


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
def test_format_result_contains_metrics(lib):
    net = high_fanout_net(4)
    lib.rebind(net)
    result = gdo_optimize(net, lib, GdoConfig(n_words=4, verify_words=8,
                                              max_rounds=2))
    text = format_result(result, lib)
    assert "delay" in text and "literals" in text
    assert "proofs" in text


def test_critical_path_report(lib):
    net = high_fanout_net(4)
    lib.rebind(net)
    text = critical_path_report(net, lib)
    assert "critical path" in text
    assert "hub" in text


def test_compare_report(lib):
    net = high_fanout_net(4)
    lib.rebind(net)
    other = net.copy()
    text = compare_report(net, other, lib)
    assert "metric" in text and "delay" in text
