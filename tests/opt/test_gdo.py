"""Tests for the GDO optimizer."""

import random

import pytest

from repro.library import mcnc_like
from repro.netlist import Netlist
from repro.opt import GdoConfig, GdoStats, gdo_optimize
from repro.synth import script_rugged
from repro.timing import Sta
from repro.verify import check_equivalence


def random_net(seed, n_pi=8, n_gates=50, n_po=4):
    rnd = random.Random(seed)
    funcs = ["AND", "OR", "NAND", "NOR", "XOR", "XNOR"]
    net = Netlist(f"r{seed}")
    sigs = [net.add_pi(f"i{k}") for k in range(n_pi)]
    for k in range(n_gates):
        f = rnd.choice(funcs + ["INV"])
        ins = [rnd.choice(sigs)] if f == "INV" else rnd.sample(sigs, 2)
        sigs.append(net.add_gate(f"g{k}", f, ins))
    net.set_pos(sigs[-n_po:])
    return net


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


def small_cfg(**kw):
    base = dict(n_words=8, verify_words=16, max_rounds=8)
    base.update(kw)
    return GdoConfig(**base)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_gdo_reduces_delay_and_stays_equivalent(seed, lib):
    net = random_net(seed)
    lib.rebind(net)
    result = gdo_optimize(net, lib, small_cfg())
    s = result.stats
    assert s.equivalent is True
    assert s.delay_after <= s.delay_before + 1e-6
    assert s.delay_after < s.delay_before  # random nets always improve
    assert s.mods2 + s.mods3 > 0
    # the input netlist is untouched
    assert net.num_gates == s.gates_before


def test_gdo_input_not_mutated(lib):
    net = random_net(4)
    lib.rebind(net)
    snapshot = net.copy()
    gdo_optimize(net, lib, small_cfg())
    assert check_equivalence(net, snapshot)
    assert net.num_gates == snapshot.num_gates


def test_gdo_history_records(lib):
    net = random_net(1)
    lib.rebind(net)
    result = gdo_optimize(net, lib, small_cfg())
    hist = result.stats.history
    assert len(hist) == result.stats.mods2 + result.stats.mods3
    for rec in hist:
        assert rec.phase in ("delay", "area")
        assert rec.kind in ("OS2", "IS2", "OS3", "IS3")
        assert rec.delay_after <= rec.delay_before + 1e-6


def test_gdo_no_area_phase(lib):
    net = random_net(2)
    lib.rebind(net)
    result = gdo_optimize(net, lib, small_cfg(area_phase=False))
    assert all(r.phase == "delay" for r in result.stats.history)
    assert result.stats.equivalent is True


def test_gdo_c2_only(lib):
    """Restricting to C2 means no 3-substitutions get applied."""
    net = random_net(3)
    lib.rebind(net)
    cfg = small_cfg()
    cfg.include_xor = False
    cfg.max_candidates_per_target = 8

    result = gdo_optimize(net, lib, cfg)
    assert result.stats.equivalent is True


@pytest.mark.parametrize("proof", ["sat", "bdd", "auto"])
def test_gdo_proof_backends(proof, lib):
    net = random_net(5, n_gates=30)
    lib.rebind(net)
    result = gdo_optimize(net, lib, small_cfg(proof=proof))
    assert result.stats.equivalent is True
    assert result.stats.delay_after <= result.stats.delay_before + 1e-6


def test_gdo_on_mapped_pipeline(lib):
    """Full pipeline: synthesize, map, GDO (a mini Table-1 row)."""
    from repro.circuits import nsym

    src = nsym(7, 2, 5)
    mapped = script_rugged(src, lib)
    result = gdo_optimize(mapped, lib, small_cfg())
    s = result.stats
    assert s.equivalent is True
    assert s.delay_after < s.delay_before
    assert check_equivalence(src, result.net)


def test_gdo_area_not_exploded(lib):
    """Concurrent area behaviour: on the random suite, literals go
    down, not up (the paper's Table-1 observation)."""
    worse = 0
    for seed in (1, 2, 3):
        net = random_net(seed)
        lib.rebind(net)
        s = gdo_optimize(net, lib, small_cfg()).stats
        if s.literals_after > s.literals_before:
            worse += 1
    assert worse <= 1


def test_gdo_stats_reductions():
    s = GdoStats(delay_before=10.0, delay_after=8.0,
                 literals_before=100, literals_after=90)
    assert s.delay_reduction == pytest.approx(0.2)
    assert s.literal_reduction == pytest.approx(0.1)
    empty = GdoStats()
    assert empty.delay_reduction == 0.0
    assert empty.literal_reduction == 0.0


def test_gdo_trivial_net(lib):
    net = Netlist("tiny")
    net.add_pi("a")
    net.add_gate("y", "INV", ["a"])
    net.set_pos(["y"])
    lib.rebind(net)
    result = gdo_optimize(net, lib, small_cfg())
    assert result.stats.equivalent is True
    assert result.stats.mods2 + result.stats.mods3 == 0
