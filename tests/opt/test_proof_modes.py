"""GDO under every ``GdoConfig.proof`` mode.

All four modes must complete on registry circuits; the proving modes
must leave an equivalent netlist, ``"none"`` must never invoke a
prover, and ``"auto"`` must fall back to SAT when the BDD budget is
exhausted.
"""

import pytest

from repro.bdd.bdd import BddBudgetExceeded
from repro.circuits.registry import build
from repro.library import mcnc_like
from repro.opt import GdoConfig, gdo_optimize
from repro.proof import backends as backends_mod
from repro.verify.equiv import check_equivalence


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


def _cfg(mode, **overrides):
    kwargs = dict(
        n_words=8,
        proof=mode,
        proof_workers=1,
        verify_final=False,
        max_rounds=1,
        max_passes_per_phase=3,
        max_trials_per_pass=24,
        max_proofs_per_pass=16,
    )
    kwargs.update(overrides)
    return GdoConfig(**kwargs)


@pytest.mark.parametrize("name", ["Z5xp1", "9sym"])
@pytest.mark.parametrize("mode", ["sat", "bdd", "auto"])
def test_proving_modes_preserve_equivalence(lib, name, mode):
    net = build(name, small=True)
    lib.rebind(net)
    golden = net.copy()
    res = gdo_optimize(net, lib, _cfg(mode))
    assert res.stats.history, "run made no modifications; test is vacuous"
    assert res.stats.proofs_attempted > 0
    assert check_equivalence(golden, res.net) is True
    p = res.stats.proof
    if mode == "sat":
        assert p.sat_valid + p.sat_invalid + p.sat_unknown > 0
    else:
        assert p.bdd_valid + p.bdd_invalid + p.bdd_unknown > 0


@pytest.mark.parametrize("name", ["Z5xp1", "9sym"])
def test_none_mode_never_calls_a_prover(lib, name, monkeypatch):
    def boom(*a, **k):
        raise AssertionError("prover invoked in proof='none' mode")

    monkeypatch.setattr(backends_mod, "prove_pair", boom)
    monkeypatch.setattr(backends_mod, "prove_serialized", boom)
    net = build(name, small=True)
    lib.rebind(net)
    res = gdo_optimize(net, lib, _cfg("none"))
    assert res.stats.history
    # Unproven substitutions count as attempted-and-accepted but the
    # broker never dispatches anything.
    assert res.stats.proof.dispatched == 0
    assert res.stats.proof.cache_misses == 0


def test_auto_mode_falls_back_on_bdd_budget(lib, monkeypatch):
    def exhausted(*a, **k):
        raise BddBudgetExceeded("node budget")

    monkeypatch.setattr(backends_mod, "bdd_equivalent", exhausted)
    net = build("Z5xp1", small=True)
    lib.rebind(net)
    golden = net.copy()
    res = gdo_optimize(net, lib, _cfg("auto"))
    assert res.stats.history
    p = res.stats.proof
    assert p.bdd_unknown > 0          # every BDD attempt hit the budget
    assert p.fallbacks > 0            # ...and fell through to SAT
    assert p.sat_valid > 0            # ...which decided the obligations
    assert check_equivalence(golden, res.net) is True


def test_none_mode_differs_from_unsound_only_in_proofs(lib):
    # "none" is the unsound fast path: same machinery, zero proofs.
    net = build("Z5xp1", small=True)
    lib.rebind(net)
    res = gdo_optimize(net, lib, _cfg("none"))
    assert res.stats.proofs_attempted == res.stats.proofs_passed
