"""Incremental and from-scratch GDO must be indistinguishable.

``GdoConfig.incremental`` only changes *how* timing/simulation state is
kept current, never *what* it contains: every incremental refresh re-runs
the exact float/bit expressions of a rebuild.  These regressions pin
that down on registry circuits — same seed and config must yield the
identical modification sequence and final metrics either way.
"""

import pytest

from repro.circuits.registry import build
from repro.library import mcnc_like
from repro.opt import GdoConfig, gdo_optimize


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


def _cfg(incremental):
    return GdoConfig(
        n_words=8,
        incremental=incremental,
        verify_final=False,
        max_rounds=2,
        max_passes_per_phase=6,
        max_trials_per_pass=48,
        max_proofs_per_pass=32,
    )


def _fingerprint(result):
    return (
        [(m.phase, m.kind, m.description, m.delay_after, m.area_after)
         for m in result.stats.history],
        result.stats.delay_after,
        result.stats.area_after,
        result.stats.gates_after,
        result.stats.literals_after,
        sorted(result.net.gates),
    )


@pytest.mark.parametrize("name", ["Z5xp1", "9sym", "term1"])
def test_incremental_matches_scratch(lib, name):
    net = build(name, small=True)
    lib.rebind(net)
    inc = gdo_optimize(net, lib, _cfg(incremental=True))
    scratch = gdo_optimize(net, lib, _cfg(incremental=False))
    assert _fingerprint(inc) == _fingerprint(scratch)
    # The run must actually have exercised both code paths.
    assert inc.stats.history, "run made no modifications; test is vacuous"
    assert inc.stats.engine.sta_incremental > 0
    assert inc.stats.engine.sim_incremental > 0
    assert scratch.stats.engine.sta_incremental == 0
    assert scratch.stats.engine.sim_incremental == 0
    assert scratch.stats.engine.sta_scratch > 0


@pytest.mark.parametrize("name", ["Z5xp1", "9sym"])
def test_parallel_proving_matches_serial(lib, name):
    """proof_workers only changes *when* verdicts are computed.

    Workers=1 proves on demand; workers=4 batch-prefetches obligations
    over a process pool.  Both must commit the bitwise-identical
    modification sequence and final netlist (gate names included).
    """
    def run(workers):
        net = build(name, small=True)
        lib.rebind(net)
        cfg = _cfg(incremental=True)
        cfg.proof_workers = workers
        return gdo_optimize(net, lib, cfg)

    serial = run(1)
    parallel = run(4)
    assert _fingerprint(serial) == _fingerprint(parallel)
    assert serial.stats.history, "run made no modifications; test is vacuous"
    assert serial.stats.proofs_attempted > 0
    # The parallel run must actually have exercised the batch path.
    assert parallel.stats.proof.parallel_batches > 0
    assert serial.stats.proof.parallel_batches == 0


def test_engine_counters_and_phase_times_populated(lib):
    net = build("Z5xp1", small=True)
    lib.rebind(net)
    res = gdo_optimize(net, lib, _cfg(incremental=True))
    e = res.stats.engine
    assert e.sta_incremental > 0 and e.sta_signals_touched > 0
    assert e.sim_scratch > 0  # phase-begin rebuilds and refutation bases
    assert e.obs_rows_computed > 0
    assert "delay" in res.stats.phase_seconds
    assert all(v >= 0.0 for v in res.stats.phase_seconds.values())


def test_report_shows_engine_lines(lib):
    from repro.opt import format_result

    net = build("Z5xp1", small=True)
    lib.rebind(net)
    res = gdo_optimize(net, lib, _cfg(incremental=True))
    text = format_result(res, lib)
    assert "engine:" in text
    assert "observability rows:" in text
    assert "phase wall time:" in text
    assert "proof broker:" in text
    assert "proof backends:" in text
