"""Observability wired through GDO: journals, metrics, overhead.

Three contracts from DESIGN.md §7:

* a fully-observed run produces a schema-valid JSONL journal and a
  ``BENCH_gdo.json`` trajectory entry;
* journals are deterministic — ``proof_workers=1`` and ``=4`` write
  identical records modulo :data:`repro.obs.journal.VOLATILE_FIELDS`,
  and observability never changes the modification sequence;
* disabled observability costs <2% of a C432 GDO run (the null-object
  fast path), so instrumentation stays in the hot loops permanently.
"""

import time

import pytest

from repro.circuits.registry import build
from repro.library import mcnc_like
from repro.obs import (
    ObsConfig, Observability, export_gdo, load_bench, load_journal,
    strip_volatile, validate_gdo_entry, validate_journal,
)
from repro.obs.smoke import run_smoke
from repro.opt import GdoConfig, gdo_optimize
from repro.opt.report import format_result


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


def _cfg(**kw):
    base = dict(
        n_words=8,
        verify_final=False,
        max_rounds=2,
        max_passes_per_phase=6,
        max_trials_per_pass=48,
        max_proofs_per_pass=32,
        proof_workers=1,
    )
    base.update(kw)
    return GdoConfig(**base)


def _fingerprint(result):
    return (
        [(m.phase, m.kind, m.description, m.delay_after, m.area_after)
         for m in result.stats.history],
        result.stats.delay_after,
        result.stats.area_after,
        sorted(result.net.gates),
    )


def test_c880_journal_and_bench_export(tmp_path, lib):
    """Acceptance: a C880 run with journal + metrics yields a
    schema-valid journal file and a validated BENCH_gdo.json entry."""
    journal_path = str(tmp_path / "C880.jsonl")
    bench_path = str(tmp_path / "BENCH_gdo.json")
    net = build("C880", small=True)
    lib.rebind(net)
    cfg = _cfg(obs=ObsConfig.full(journal_path=journal_path))
    result = gdo_optimize(net, lib, cfg)
    assert result.stats.history, "run made no modifications; test is vacuous"

    records = load_journal(journal_path)
    validate_journal(records)
    assert records == result.stats.obs.journal_records
    assert records[0]["type"] == "run_begin"
    assert records[0]["circuit"] == net.name
    assert records[-1]["type"] == "run_end"
    assert records[-1]["mods"] == len(result.stats.history)
    by_type = {}
    for rec in records:
        by_type.setdefault(rec["type"], []).append(rec)
    assert len(by_type["commit"]) == len(result.stats.history)
    assert by_type["verdict"], "no proof verdicts journaled"
    # Every verdict cites its obligation hash and cache disposition.
    for rec in by_type["verdict"]:
        assert "obligation" in rec and "cache_hit" in rec

    # Worker metrics made it back into the parent registry.
    counters = result.stats.obs.metrics["counters"]
    assert any(k.startswith("proof_attempts{") for k in counters)
    assert result.stats.obs.counter_sum("gdo_committed") == \
        len(result.stats.history)

    entry = export_gdo(result, path=bench_path)
    validate_gdo_entry(entry)
    assert entry["circuit"] == net.name
    assert entry["funnel"]["committed"] == len(result.stats.history)
    assert entry["hot_spans"], "tracing was on; hot spans expected"
    assert load_bench(bench_path) == [entry]


def test_journal_identical_serial_vs_parallel(lib):
    """proof_workers=1 and =4 must write the same journal modulo the
    volatile latency/caching fields."""
    net = build("Z5xp1", small=True)
    lib.rebind(net)
    results = {}
    for workers in (1, 4):
        cfg = _cfg(proof_workers=workers,
                   obs=ObsConfig(metrics=True, journal=True))
        results[workers] = gdo_optimize(net.copy(), lib, cfg)
    assert _fingerprint(results[1]) == _fingerprint(results[4])
    j1 = results[1].stats.obs.journal_records
    j4 = results[4].stats.obs.journal_records
    assert j1, "empty journal; test is vacuous"
    assert strip_volatile(j1) == strip_volatile(j4)
    # The stripped fields were the only difference tolerated — raw
    # journals still agree on sequence length and record types.
    assert [r["type"] for r in j1] == [r["type"] for r in j4]


def test_obs_never_changes_the_modification_sequence(lib):
    net = build("9sym", small=True)
    lib.rebind(net)
    off = gdo_optimize(net.copy(), lib, _cfg(obs=ObsConfig.off()))
    full = gdo_optimize(net.copy(), lib, _cfg(obs=ObsConfig.full()))
    assert _fingerprint(off) == _fingerprint(full)
    assert off.stats.obs is None
    assert full.stats.obs is not None


def test_disabled_obs_overhead_under_two_percent(lib):
    """Acceptance: the disabled-mode instrumentation (null spans, null
    instruments) costs <=2% of a C432 GDO run.

    Two timed GDO runs diverge by more than 2% from machine noise
    alone, so the guard is computed, not raced: count the events an
    enabled run emits, measure the per-event cost of the no-op path,
    and bound their product against the disabled run's wall time.
    """
    net = build("C432", small=True)
    lib.rebind(net)

    t0 = time.perf_counter()
    off = gdo_optimize(net.copy(), lib, _cfg(obs=ObsConfig.off()))
    wall_off = time.perf_counter() - t0
    assert off.stats.obs is None

    on = gdo_optimize(net.copy(), lib,
                      _cfg(obs=ObsConfig(metrics=True, trace=True)))
    snap = on.stats.obs
    events = sum(v["count"] for v in snap.spans.values())
    events += sum(snap.metrics["counters"].values())
    events += sum(h["count"]
                  for h in snap.metrics["histograms"].values())
    assert events > 0

    null_obs = Observability()
    reps = 100_000
    t0 = time.perf_counter()
    for _ in range(reps):
        with null_obs.span("x", key="y"):
            pass
        null_obs.metrics.counter("c", site="s").inc()
        null_obs.metrics.histogram("h").observe(0.0)
    per_event = (time.perf_counter() - t0) / (3 * reps)

    overhead = per_event * events
    assert overhead <= 0.02 * wall_off, (
        f"disabled obs would cost {overhead:.4f}s of a {wall_off:.3f}s "
        f"run ({100 * overhead / wall_off:.2f}% > 2%): "
        f"{events} events at {1e9 * per_event:.0f}ns each"
    )


def test_report_funnel_and_hot_spans_are_guarded(lib):
    net = build("Z5xp1", small=True)
    lib.rebind(net)
    off = gdo_optimize(net.copy(), lib, _cfg(obs=ObsConfig.off()))
    report_off = format_result(off, lib)
    assert "candidate funnel" not in report_off
    assert "hot spans" not in report_off

    full = gdo_optimize(net.copy(), lib, _cfg(obs=ObsConfig.full()))
    report_full = format_result(full, lib)
    assert "candidate funnel:" in report_full
    assert "hot spans (top 8 by wall time):" in report_full
    assert "gdo.optimize" in report_full
    # Rendering the same stats without the snapshot must print exactly
    # the pre-obs report: the added lines are purely additive.
    full.stats.obs = None
    stripped_lines = format_result(full, lib).splitlines()
    assert stripped_lines == [
        line for line in report_full.splitlines()
        if not line.startswith(("  candidate funnel:", "  hot spans"))
        and not (line.startswith("    ") and not line.startswith("    ["))
    ]


def test_ci_smoke_runner(tmp_path):
    """The CI entry point end-to-end on a small circuit."""
    out = tmp_path / "artifacts"
    assert run_smoke("Z5xp1", str(out), max_rounds=1) == 0
    assert (out / "journal_Z5xp1.jsonl").exists()
    assert load_bench(str(out / "BENCH_gdo.json"))
