"""Journal-guided replay: prefix selection, oracle queues, resume
determinism (in-process; the SIGKILL path lives in test_recovery)."""

import pytest

from repro.circuits import build
from repro.library import mcnc_like
from repro.obs import ObsConfig, strip_volatile
from repro.opt import GdoConfig, gdo_optimize
from repro.opt.replay import (
    ReplayCursor, ReplayDivergence, committed_prefix,
)


def rec(rectype, **fields):
    return {"type": rectype, **fields}


# ----------------------------------------------------------------------
# committed_prefix
# ----------------------------------------------------------------------
def test_prefix_cuts_after_last_commit():
    records = [
        rec("run_begin"), rec("trial", desc="a"),
        rec("commit", desc="a"), rec("trial", desc="b"),
        rec("commit", desc="b"), rec("trial", desc="c"),
    ]
    assert committed_prefix(records) == records[:5]


def test_prefix_none_without_commits():
    assert committed_prefix([rec("run_begin"), rec("trial")]) is None
    assert committed_prefix([]) is None


# ----------------------------------------------------------------------
# ReplayCursor
# ----------------------------------------------------------------------
def _cursor():
    return ReplayCursor([
        rec("static", desc="a", verdict="refuted"),
        rec("refute", desc="b", refuted=True),
        rec("refute", desc="c", refuted=False),
        rec("verdict", obligation="ab", verdict="valid"),
        rec("commit", desc="c"),
    ])


def test_cursor_serves_in_order_then_goes_live():
    cur = _cursor()
    assert cur.active and cur.has_refute()
    cur.static_check("a", "refuted")
    assert cur.refute("b") is True
    assert cur.refute("c") is False
    assert not cur.has_refute()
    assert cur.verdict()["verdict"] == "valid"
    assert not cur.active
    # Drained: every oracle says "compute live".
    assert cur.refute("d") is None
    assert cur.verdict() is None
    cur.static_check("anything", "proved")  # no-op when drained
    assert cur.commits == 1


def test_cursor_detects_divergence():
    with pytest.raises(ReplayDivergence):
        _cursor().static_check("a", "proved")
    cur = _cursor()
    cur.static_check("a", "refuted")
    with pytest.raises(ReplayDivergence):
        cur.refute("not-b")
    with pytest.raises(ReplayDivergence):
        ReplayCursor([rec("refute", desc="x", refuted="yes")]).refute("x")
    with pytest.raises(ReplayDivergence):
        ReplayCursor([rec("verdict", verdict=7)]).verdict()


# ----------------------------------------------------------------------
# resume determinism (in-process)
# ----------------------------------------------------------------------
CFG = dict(n_words=4, max_rounds=1, verify_final=False,
           static_funnel=False, proof_workers=1, max_seconds=60.0)


def _run(resume=None):
    net = build("C432", small=True)
    cfg = GdoConfig(obs=ObsConfig(metrics=True, journal=True), **CFG)
    return gdo_optimize(net, mcnc_like(), cfg, resume=resume)


def test_resumed_run_matches_uninterrupted(tmp_path):
    from repro.netlist.edit import structural_signature

    ref = _run()
    journal = ref.stats.obs.journal_records
    commits = [i for i, r in enumerate(journal)
               if r.get("type") == "commit"]
    assert len(commits) >= 2, "circuit too easy to exercise replay"

    # Crash "between" two commits: resume from a mid-run prefix.
    cut = journal[: commits[len(commits) // 2] + 1]
    prefix = committed_prefix(cut)
    resumed = _run(resume=prefix)

    assert resumed.stats.resumed
    assert resumed.stats.replayed_verdicts > 0
    assert structural_signature(resumed.net) \
        == structural_signature(ref.net)
    assert resumed.stats.delay_after == ref.stats.delay_after
    assert strip_volatile(resumed.stats.obs.journal_records) \
        == strip_volatile(journal)


def test_foreign_journal_raises_divergence():
    ref = _run()
    journal = ref.stats.obs.journal_records
    prefix = committed_prefix(journal)
    assert prefix is not None
    # Corrupt the first refute decision: replay must notice, not
    # silently commit someone else's run.
    doctored = [dict(r) for r in prefix]
    for r in doctored:
        if r.get("type") == "refute":
            r["desc"] = "bogus<-nothing"
            break
    with pytest.raises(ReplayDivergence):
        _run(resume=doctored)
