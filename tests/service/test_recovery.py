"""Crash recovery: SIGKILL a worker mid-run, restart, compare against
an uninterrupted run — the acceptance test of the resume contract."""

import multiprocessing
import os

from repro.obs import load_journal_tolerant, strip_volatile
from repro.service import JobQueue, JobSpec
from repro.service.recovery import (
    prepare_resume, recover_queue, resume_records,
)
from repro.service.worker import run_job

CTX = multiprocessing.get_context("fork")

OVERRIDES = {"n_words": 4, "max_rounds": 1, "verify_final": False,
             "static_funnel": False, "proof_workers": 1,
             "max_seconds": 60.0}


def _blif():
    path = os.path.join("examples", "circuits", "c432_small.blif")
    with open(path, encoding="utf-8") as fh:
        return fh.read()


def _submit(root):
    queue = JobQueue(root)
    return queue, queue.submit(JobSpec(
        netlist=_blif(), fmt="blif", name="c432s",
        config=dict(OVERRIDES)))


def _work(root, crash=None):
    """Claim-and-run in a child process, optionally crashing via the
    journal's SIGKILL fault-injection hook."""
    if crash:
        os.environ["REPRO_CRASH_AFTER"] = crash
    else:
        os.environ.pop("REPRO_CRASH_AFTER", None)
    queue = JobQueue(root)
    job = queue.claim()
    assert job is not None
    run_job(queue, job, store_path=os.path.join(root, "store"))


def _run_child(root, crash=None):
    proc = CTX.Process(target=_work, args=(root, crash))
    proc.start()
    proc.join(timeout=300)
    return proc.exitcode


def test_sigkilled_job_resumes_identically(tmp_path):
    # Reference: uninterrupted run in its own root.  Both runs execute
    # in children forked from this process, so hash seeds agree.
    ref_root = str(tmp_path / "ref")
    ref_queue, ref_id = _submit(ref_root)
    assert _run_child(ref_root) == 0
    ref = ref_queue.status(ref_id)
    assert ref["state"] == "done"

    # Crash run: SIGKILL after the 2nd commit, torn journal line.
    root = str(tmp_path / "crash")
    queue, job_id = _submit(root)
    assert _run_child(root, crash="commit:2:partial") == -9

    report = recover_queue(queue)
    assert report.resumable == [job_id]
    assert report.leases_cleared == 1
    assert report.torn_records >= 1  # the injected partial line

    # Restarted worker resumes from the journal and finishes.
    assert _run_child(root) == 0
    status = queue.status(job_id)
    assert status["state"] == "done"
    result = status["result"]
    assert result["resumed"] is True
    assert result["replayed_verdicts"] > 0

    # The resume contract: identical final netlist and identical
    # decision trail, modulo volatile fields.
    assert result["signature"] == ref["result"]["signature"]
    assert result["delay_after"] == ref["result"]["delay_after"]
    assert result["area_after"] == ref["result"]["area_after"]
    job = queue.get(job_id)
    resumed_journal, _ = load_journal_tolerant(job.journal_path)
    ref_journal, _ = load_journal_tolerant(
        ref_queue.get(ref_id).journal_path)
    assert strip_volatile(resumed_journal) == strip_volatile(ref_journal)
    # The pre-crash journal was preserved, not clobbered.
    assert os.path.exists(job.journal_path + ".prev")


def test_recover_classifies_fresh_and_terminal(tmp_path):
    queue = JobQueue(str(tmp_path))
    done_id = queue.submit(JobSpec(netlist=_blif(), name="done"))
    queue.complete(queue.claim(), {"ok": True})
    fresh_id = queue.submit(JobSpec(netlist=_blif(), name="fresh"))

    report = recover_queue(queue)
    assert report.terminal == [done_id]
    assert report.fresh == [fresh_id]
    assert report.resumable == []
    assert report.pending == [fresh_id]


def test_resume_records_requires_commits(tmp_path):
    queue = JobQueue(str(tmp_path))
    job = queue.get(queue.submit(JobSpec(netlist=_blif())))
    # No journal at all.
    assert resume_records(job) is None
    # Journal without commits: nothing worth replaying.
    with open(job.journal_path, "w", encoding="utf-8") as fh:
        fh.write('{"seq": 0, "type": "run_begin"}\n')
        fh.write('{"seq": 1, "type": "trial", "desc": "x"}\n')
    assert resume_records(job) is None
    # prepare_resume still moves the stale journal aside.
    assert prepare_resume(job) is None
    assert not os.path.exists(job.journal_path)
    assert os.path.exists(job.journal_path + ".prev")
