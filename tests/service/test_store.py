"""Sharded verdict store: appends, merge, compaction, concurrency."""

import json
import multiprocessing
import os

import pytest

from repro.proof.backends import INVALID, UNKNOWN, VALID
from repro.service.store import (
    ShardedProofCache, ShardedVerdictStore, StoreError, shard_of,
)

CTX = multiprocessing.get_context("fork")


def test_shard_of_hex_prefix():
    assert shard_of("ab12ff", 1) == "a"
    assert shard_of("AB12ff", 2) == "ab"
    assert shard_of("zkey", 1) == "_"      # non-hex shares one shard
    assert shard_of("", 2) == "__"


def test_prefix_len_validated(tmp_path):
    with pytest.raises(StoreError):
        ShardedVerdictStore(str(tmp_path), prefix_len=0)
    with pytest.raises(StoreError):
        ShardedVerdictStore(str(tmp_path), prefix_len=9)


def test_append_get_roundtrip_across_instances(tmp_path):
    root = str(tmp_path / "store")
    writer = ShardedVerdictStore(root)
    assert writer.append("aa01", VALID)
    assert writer.append("bb02", INVALID)
    writer.flush()

    reader = ShardedVerdictStore(root)
    assert reader.get("aa01", refresh=True) == VALID
    assert reader.get("bb02", refresh=True) == INVALID
    assert reader.get("cc03", refresh=True) is None
    writer.close()
    reader.close()


def test_non_definitive_refused(tmp_path):
    store = ShardedVerdictStore(str(tmp_path / "store"))
    assert not store.append("aa01", UNKNOWN)
    assert not store.append("aa02", "weird")
    assert store.get("aa01") is None
    store.close()


def test_incremental_refresh_sees_other_writers(tmp_path):
    root = str(tmp_path / "store")
    a = ShardedVerdictStore(root)
    b = ShardedVerdictStore(root)
    a.append("aa01", VALID)
    a.flush()
    # b's first look misses without refresh, hits with.
    assert b.get("aa01") is None
    assert b.get("aa01", refresh=True) == VALID
    # New appends after b's refresh are picked up by the next refresh
    # (incremental tail, not a re-read).
    a.append("aa02", INVALID)
    a.flush()
    assert b.get("aa02", refresh=True) == INVALID
    a.close()
    b.close()


def _hammer(root, worker, n):
    store = ShardedVerdictStore(root, fsync_interval=8)
    for i in range(n):
        # Same shard ('a') from every process: worst-case contention.
        store.append(f"aa{worker:02d}{i:04d}", VALID if i % 2 else INVALID)
    store.close()


def test_concurrent_appends_lose_nothing(tmp_path):
    root = str(tmp_path / "store")
    workers, per = 4, 150
    procs = [
        CTX.Process(target=_hammer, args=(root, w, per))
        for w in range(workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
    assert all(p.exitcode == 0 for p in procs)

    merged = ShardedVerdictStore(root).load()
    assert len(merged) == workers * per
    for w in range(workers):
        for i in range(per):
            want = VALID if i % 2 else INVALID
            assert merged[f"aa{w:02d}{i:04d}"] == want


def test_compaction_folds_sealed_segments(tmp_path):
    root = str(tmp_path / "store")
    for salt in range(2):
        writer = ShardedVerdictStore(root)
        for i in range(20):
            writer.append(f"aa{salt}{i:03d}", VALID)
        writer.close()  # seals -> compactable

    store = ShardedVerdictStore(root)
    stats = store.compact()
    assert stats.segments_folded == 2
    assert stats.entries == 40
    shard_dir = tmp_path / "store" / "shards" / "a"
    assert (shard_dir / "base.json").exists()
    assert not [n for n in os.listdir(shard_dir) if n.startswith("seg-")]
    assert len(store.load()) == 40
    store.close()


def test_compaction_under_concurrent_reader(tmp_path):
    """A reader that tailed segments pre-compaction keeps a consistent
    view afterwards — nothing disappears, new base entries appear."""
    root = str(tmp_path / "store")
    writer = ShardedVerdictStore(root)
    for i in range(10):
        writer.append(f"aa{i:03d}", VALID)
    writer.flush()

    reader = ShardedVerdictStore(root)
    assert reader.get("aa000", refresh=True) == VALID  # tails the segment

    writer.append("aa900", INVALID)
    writer.close()
    compactor = ShardedVerdictStore(root)
    stats = compactor.compact()
    compactor.close()
    assert stats.segments_folded >= 1

    # Pre-compaction entries survive in the reader's view; the entry
    # appended after its refresh arrives via the new base.
    for i in range(10):
        assert reader.get(f"aa{i:03d}") == VALID
    assert reader.get("aa900", refresh=True) == INVALID
    reader.close()


def _orphan_pid():
    """A real-but-dead pid (forked child that exits immediately)."""
    proc = CTX.Process(target=lambda: None)
    proc.start()
    proc.join()
    return proc.pid


def test_compaction_reclaims_dead_writer_orphans(tmp_path):
    root = str(tmp_path / "store")
    shard_dir = tmp_path / "store" / "shards" / "a"
    shard_dir.mkdir(parents=True)
    pid = _orphan_pid()
    orphan = shard_dir / f"seg-{pid}-deadbeef.open.jsonl"
    orphan.write_text(json.dumps({"k": "aa01", "v": VALID}) + "\n")

    store = ShardedVerdictStore(root)
    stats = store.compact()
    assert stats.orphans_sealed == 1
    assert stats.segments_folded == 1
    assert not orphan.exists()
    assert store.get("aa01", refresh=True) == VALID
    store.close()


def test_torn_segment_tail_dropped(tmp_path):
    root = str(tmp_path / "store")
    shard_dir = tmp_path / "store" / "shards" / "a"
    shard_dir.mkdir(parents=True)
    pid = _orphan_pid()
    seg = shard_dir / f"seg-{pid}-cafe0123.jsonl"
    seg.write_bytes(
        json.dumps({"k": "aa01", "v": VALID}).encode() + b"\n"
        + b'{"k": "aa02", "v": "val'  # torn mid-write by a crash
    )
    store = ShardedVerdictStore(root)
    assert store.get("aa01", refresh=True) == VALID
    assert store.get("aa02", refresh=True) is None
    stats = store.compact()
    assert stats.torn_lines_dropped == 1
    assert store.get("aa01", refresh=True) == VALID
    store.close()


# ----------------------------------------------------------------------
# ShardedProofCache (the broker adapter)
# ----------------------------------------------------------------------
def test_cache_counts_shared_vs_local_hits(tmp_path):
    root = str(tmp_path / "store")
    other = ShardedProofCache(ShardedVerdictStore(root))
    other.put("aa01", VALID)
    other.flush()

    mine = ShardedProofCache(ShardedVerdictStore(root))
    assert mine.get("aa01") == VALID     # served from the store
    assert mine.get("aa01") == VALID     # now from the local LRU
    assert mine.get("bb02") is None
    assert (mine.shared_hits, mine.local_hits, mine.misses) == (1, 1, 1)
    assert mine.shared_hit_rate == 0.5
    other.close()
    mine.close()


def test_cache_put_is_durable_but_unknown_stays_local(tmp_path):
    root = str(tmp_path / "store")
    cache = ShardedProofCache(ShardedVerdictStore(root))
    cache.put("aa01", VALID)
    cache.put("aa02", UNKNOWN)   # LRU only — never shared
    cache.close()

    fresh = ShardedProofCache(ShardedVerdictStore(root))
    assert fresh.get("aa01") == VALID
    assert fresh.get("aa02") is None
    fresh.close()


def test_cache_lru_bounded_but_store_backed(tmp_path):
    root = str(tmp_path / "store")
    cache = ShardedProofCache(ShardedVerdictStore(root), max_entries=2)
    for i in range(5):
        cache.put(f"aa{i:02d}", VALID)
    assert len(cache) == 2
    # Evicted from memory, still answerable from the store.
    assert cache.get("aa00") == VALID
    assert cache.shared_hits == 1
    cache.close()
