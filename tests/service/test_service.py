"""Daemon front end: wire protocol, worker pool, service stats."""

import json
import os

import pytest

from repro.service.client import ServiceClient
from repro.service.queue import JobQueue, JobSpec
from repro.service.server import (
    OptimizationService, export_service, request, service_stats,
    stats_registry,
)
from repro.service.worker import drain_queue

BENCH = """\
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
g1 = NAND(a, b)
y = NAND(g1, c)
"""

#: cheap job: no proving, one round — milliseconds per job.
FAST = {"proof": "none", "n_words": 2, "max_rounds": 1,
        "verify_final": False, "max_seconds": 10.0}


@pytest.fixture
def service(tmp_path):
    svc = OptimizationService(str(tmp_path / "svc"), workers=2)
    svc.start()
    try:
        yield svc
    finally:
        svc.close()


def _client(service):
    _host, port = service.address
    return ServiceClient(port=port)


def test_submit_status_roundtrip(service):
    client = _client(service)
    assert client.ping()["ok"]
    job_id = client.submit(BENCH, fmt="bench", name="tiny", config=FAST)
    final = client.wait(job_id, timeout=60.0)
    assert final["state"] == "done"
    result = final["result"]
    assert result["circuit"] == "tiny"
    assert result["delay_after"] <= result["delay_before"]
    assert "signature" in result


def test_two_clients_share_one_daemon(service):
    # Two distinct client objects (separate connections per call).
    a, b = _client(service), _client(service)
    ja = a.submit(BENCH, fmt="bench", name="a", config=FAST)
    jb = b.submit(BENCH, fmt="bench", name="b", config=FAST)
    assert a.drain(timeout=60.0)
    assert {a.status(ja)["state"], b.status(jb)["state"]} == {"done"}
    jobs = a.jobs()
    assert jobs[ja] == "done" and jobs[jb] == "done"


def test_stats_and_export(service, tmp_path):
    client = _client(service)
    client.wait(client.submit(BENCH, fmt="bench", config=FAST),
                timeout=60.0)
    stats = client.stats()
    assert stats["jobs_done"] >= 1
    assert stats["queue_depth"] == 0
    assert "cross_client_hit_rate" in stats
    assert stats["workers_alive"] == 2
    assert "uptime_seconds" in stats

    reg = stats_registry(stats)
    snap = reg.snapshot()
    assert snap["counters"]["service_jobs{state=done}"] >= 1

    path = str(tmp_path / "BENCH_service.json")
    entry = export_service(stats, path=path, key="testkey")
    assert entry["key"] == "testkey"
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    assert data["entries"][0]["jobs"]["done"] >= 1


def test_bad_requests_are_rejected(service):
    _host, port = service.address
    bad_spec = request("127.0.0.1", port, {
        "op": "submit", "spec": {"netlist": "", "fmt": "blif"}})
    assert not bad_spec["ok"] and "netlist" in bad_spec["error"]
    unknown = request("127.0.0.1", port, {"op": "frobnicate"})
    assert not unknown["ok"]
    garbled = request("127.0.0.1", port, {"op": "submit",
                                          "spec": "not-an-object"})
    assert not garbled["ok"]


def test_failed_job_reports_error(service):
    client = _client(service)
    job_id = client.submit("definitely not blif", fmt="blif",
                           name="broken")
    final = client.wait(job_id, timeout=60.0)
    assert final["state"] == "failed"
    assert final["error"]


def test_compact_op(service):
    client = _client(service)
    client.wait(client.submit(BENCH, fmt="bench", config=FAST),
                timeout=60.0)
    response = client.compact()
    assert response["ok"]
    assert response["segments_folded"] >= 0
    assert response["retired"] == 0      # no GC bounds on the daemon


def test_partition_workers_as_per_job_override(service):
    """`-o partition_workers=N` routes one job through the partition
    plane; the summary reports the partition counters."""
    client = _client(service)
    config = dict(FAST, partition_workers=2, partition_regions=2,
                  partition_min_gates=1)
    job_id = client.submit(BENCH, fmt="bench", name="part",
                           config=config)
    final = client.wait(job_id, timeout=60.0)
    assert final["state"] == "done"
    part = final["result"]["partition"]
    assert part["workers"] == 2
    assert part["regions"] >= 1
    assert part["rounds"] >= 0


def test_drain_queue_offline(tmp_path):
    """Batch mode without a daemon: workers run the spool dry."""
    root = str(tmp_path / "batch")
    queue = JobQueue(root)
    for i in range(3):
        queue.submit(JobSpec(netlist=BENCH, fmt="bench",
                             name=f"j{i}", config=dict(FAST)))
    done = drain_queue(root, store_path=os.path.join(root, "store"),
                       workers=2)
    assert done == 3
    assert all(s == "done" for s in queue.jobs().values())

    stats = service_stats(root)
    assert stats["jobs_done"] == 3
    assert stats["queue_depth"] == 0
