"""Self-healing service layer (DESIGN.md §11).

Covers the robustness plane end to end: PID-recycling-safe leases with
TTL backstop, retry budgets with seeded backoff, dead-letter quarantine
and requeue, stale-staging cleanup, store read-only degradation and
re-promotion, supervisor respawn of crashed workers and watchdog kills
of hung ones, event-log tolerance, and the hardened wire protocol.
"""

import json
import os
import socket
import time

import pytest

from repro.faults import FaultPlan, FaultSpec, active
from repro.obs.journal import (
    EventLog, event_counts, load_events, load_journal_tolerant,
)
from repro.service.queue import JobQueue, JobSpec, QueueError, lease_live
from repro.service.recovery import recover_queue
from repro.service.store import ShardedVerdictStore
from repro.service.supervisor import Supervisor
from repro.service.worker import (
    RetryPolicy, WorkerPool, read_heartbeats, run_job,
)

BLIF = """\
.model tiny
.inputs a b
.outputs y
.names a b y
11 1
.end
"""

BENCH = """\
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
g1 = NAND(a, b)
y = NAND(g1, c)
"""

#: cheap job: no proving, one round — milliseconds per job.
FAST = {"proof": "none", "n_words": 2, "max_rounds": 1,
        "verify_final": False, "max_seconds": 10.0}


def spec(name="tiny", netlist=BLIF, fmt="blif", **config):
    return JobSpec(netlist=netlist, fmt=fmt, name=name, config=config)


def fast_spec(name="tiny"):
    return JobSpec(netlist=BENCH, fmt="bench", name=name,
                   config=dict(FAST))


def plan(pattern, **kw):
    return FaultPlan(seed=11, specs=(FaultSpec(pattern=pattern, **kw),))


# ----------------------------------------------------------------------
# leases: pid recycling, TTL, legacy format
# ----------------------------------------------------------------------
def test_lease_is_json_with_identity(tmp_path):
    q = JobQueue(str(tmp_path))
    job_id = q.submit(spec())
    job = q.claim()
    info = q._lease_info(job)
    assert info["pid"] == os.getpid()
    assert info["token"] and isinstance(info["created"], float)
    assert lease_live(info)
    assert q.status(job_id)["state"] == "running"


def test_recycled_pid_is_stale(tmp_path):
    """A live pid with a mismatched start tick is a *recycled* pid —
    the original claimant is gone, the lease must not be trusted."""
    q = JobQueue(str(tmp_path))
    q.submit(spec())
    job = q.claim()
    info = q._lease_info(job)
    if info.get("start") is None:  # pragma: no cover - non-/proc host
        pytest.skip("no /proc start ticks on this platform")
    forged = dict(info, start=info["start"] - 1)
    assert not lease_live(forged)
    with open(job.lease_path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(forged))
    # Reclaimable even though the pid (ours) is alive.
    assert JobQueue(str(tmp_path)).claim() is not None


def test_ttl_backstop_without_start_tick(tmp_path):
    """When the start tick is unavailable the TTL bounds how long a
    live-pid lease is trusted."""
    info = {"pid": os.getpid(), "created": time.time() - 100.0}
    assert lease_live(info)                  # liveness alone: trusted
    assert not lease_live(info, ttl=10.0)    # expired under TTL
    assert lease_live(dict(info, created=time.time()), ttl=10.0)
    assert not lease_live({"pid": os.getpid()}, ttl=10.0)  # no stamp


def test_legacy_bare_pid_lease_adapts(tmp_path):
    q = JobQueue(str(tmp_path))
    q.submit(spec())
    job = q.claim()
    with open(job.lease_path, "w", encoding="utf-8") as fh:
        fh.write("999999999\n")  # dead pid, legacy format
    assert q._lease_info(job) == {"pid": 999999999}
    assert not lease_live(q._lease_info(job))
    assert JobQueue(str(tmp_path)).claim() is not None


def test_dead_claimant_is_stale(tmp_path):
    assert not lease_live({"pid": 999999999, "start": 1})
    assert not lease_live(None)
    assert not lease_live({"pid": "junk"})


def test_reclaim_rechecks_staleness_under_lock(tmp_path, monkeypatch):
    """If another reclaimer finishes its whole cycle between our
    unlocked staleness read and our rename, we must NOT steal its
    fresh lease — the re-check under the job-dir flock catches it."""
    from repro.service import queue as queue_mod
    q = JobQueue(str(tmp_path))
    q.submit(spec())
    job = q.claim()
    live = json.dumps(queue_mod._lease_payload(), sort_keys=True) + "\n"
    real = JobQueue._lease_info
    calls = {"n": 0}

    def raced(self, j):
        calls["n"] += 1
        if calls["n"] == 1:
            # Unlocked read sees the old stale lease; before we get
            # the lock, a rival reclaimer installs a fresh live one.
            with open(j.lease_path, "w", encoding="utf-8") as fh:
                fh.write(live)
            return {"pid": 999999999}
        return real(self, j)

    monkeypatch.setattr(JobQueue, "_lease_info", raced)
    assert JobQueue(str(tmp_path)).claim() is None
    with open(job.lease_path, "r", encoding="utf-8") as fh:
        assert fh.read() == live  # rival's lease untouched


def test_reclaim_serialized_by_job_dir_lock(tmp_path):
    """A reclaimer mid-cycle (holding the job-dir flock) excludes
    every other reclaimer; once it releases, reclaim proceeds."""
    import fcntl
    q = JobQueue(str(tmp_path))
    q.submit(spec())
    job = q.claim()
    with open(job.lease_path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"pid": 999999999, "start": 1}))
    dirfd = os.open(job.path, os.O_RDONLY)
    try:
        fcntl.flock(dirfd, fcntl.LOCK_EX)
        assert JobQueue(str(tmp_path)).claim() is None
    finally:
        os.close(dirfd)
    assert JobQueue(str(tmp_path)).claim() is not None


# ----------------------------------------------------------------------
# retry bookkeeping
# ----------------------------------------------------------------------
def test_defer_skips_until_due(tmp_path):
    q = JobQueue(str(tmp_path))
    q.submit(spec())
    job = q.claim()
    q.defer(job, 0.15)
    assert q.claim() is None           # lease released but not due
    assert q.status(job.job_id)["state"] == "queued"
    time.sleep(0.2)
    assert q.claim() is not None


def test_attempt_ledger_survives_torn_tail(tmp_path):
    q = JobQueue(str(tmp_path))
    q.submit(spec())
    job = q.claim()
    assert q.record_attempt(job, "start") == 1
    assert q.record_attempt(job, "error", error="x" * 5000) == 1
    assert q.record_attempt(job, "start") == 2
    with open(job.attempts_path, "a", encoding="utf-8") as fh:
        fh.write('{"event": "err')  # killed writer's torn tail
    assert q.attempt_counts(job) == {"start": 2, "error": 1}


def test_retry_policy_backoff_is_seeded():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                         backoff_max=1.0, jitter=0.5)
    d1 = policy.delay(1, seed_key="job-a")
    assert d1 == policy.delay(1, seed_key="job-a")   # reproducible
    assert d1 != policy.delay(1, seed_key="job-b")   # de-correlated
    assert 0.1 <= d1 <= 0.15
    assert policy.delay(9, seed_key="job-a") <= 1.5  # capped


# ----------------------------------------------------------------------
# dead-letter quarantine
# ----------------------------------------------------------------------
def test_quarantine_requeue_round_trip(tmp_path):
    q = JobQueue(str(tmp_path))
    job_id = q.submit(spec())
    job = q.claim()
    q.record_attempt(job, "error", error="boom")
    with open(job.journal_path, "w", encoding="utf-8") as fh:
        fh.write("{}\n")
    q.quarantine(job, "retry budget spent")
    assert q.get(job_id) is None            # out of the spool
    assert q.claim() is None
    dead = q.deadletter_jobs()
    assert dead[job_id]["reason"] == "retry budget spent"
    assert dead[job_id]["attempts"] == {"error": 1}
    assert q.status(job_id)["state"] == "deadlettered"

    assert q.requeue(job_id)
    assert q.deadletter_jobs() == {}
    assert q.status(job_id)["state"] == "queued"
    back = q.claim()
    assert back.job_id == job_id
    assert q.attempt_counts(back) == {}      # fresh budget
    assert os.path.exists(back.journal_path + ".prev")
    assert not os.path.exists(back.journal_path)
    assert not q.requeue(job_id)             # idempotent
    assert not q.requeue("../evil")


def test_run_job_quarantines_crash_loop(tmp_path):
    q = JobQueue(str(tmp_path))
    q.submit(fast_spec())
    job = q.claim()
    for _ in range(3):  # three crashed runs left only start events
        q.record_attempt(job, "start")
    out = run_job(q, job, policy=RetryPolicy(max_attempts=3))
    assert out["state"] == "deadlettered"
    dead = q.deadletter_jobs()
    assert "crash loop" in dead[job.job_id]["reason"]


# ----------------------------------------------------------------------
# retry semantics through run_job
# ----------------------------------------------------------------------
def test_transient_fault_retries_then_succeeds(tmp_path):
    q = JobQueue(str(tmp_path))
    job_id = q.submit(fast_spec())
    policy = RetryPolicy(max_attempts=5, backoff_base=0.01)
    with active(plan("io.parse.truncated", every=1, max_fires=2)):
        out = run_job(q, q.claim(), policy=policy)
        assert out["state"] == "retry" and out["attempt"] == 1
        time.sleep(0.05)
        out = run_job(q, q.claim(), policy=policy)
        assert out["state"] == "retry" and out["attempt"] == 2
        time.sleep(0.05)
        out = run_job(q, q.claim(), policy=policy)
    assert out["state"] == "done"
    assert q.status(job_id)["state"] == "done"
    assert q.attempt_counts(q.get(job_id)) == {"start": 3, "error": 2}


def test_permanent_failure_skips_the_budget(tmp_path):
    q = JobQueue(str(tmp_path))
    job_id = q.submit(spec(netlist="definitely not blif"))
    out = run_job(q, q.claim(), policy=RetryPolicy(max_attempts=3))
    assert out["state"] == "failed"
    assert q.status(job_id)["state"] == "failed"
    assert q.attempt_counts(q.get(job_id)) == {"start": 1}


def test_poison_job_exhausts_budget_to_deadletter(tmp_path):
    q = JobQueue(str(tmp_path))
    job_id = q.submit(fast_spec())
    policy = RetryPolicy(max_attempts=2, backoff_base=0.01)
    with active(plan("io.parse.truncated", prob=1.0)):
        out = run_job(q, q.claim(), policy=policy)
        assert out["state"] == "retry"
        time.sleep(0.05)
        out = run_job(q, q.claim(), policy=policy)
    assert out["state"] == "deadlettered"
    assert job_id in q.deadletter_jobs()


# ----------------------------------------------------------------------
# submit crash debris
# ----------------------------------------------------------------------
def test_submit_torn_leaves_staging_for_recovery(tmp_path):
    q = JobQueue(str(tmp_path))
    with active(plan("queue.submit.torn", every=1, max_fires=1)):
        with pytest.raises(QueueError):
            q.submit(spec())
    stale = [n for n in os.listdir(q.jobs_dir)
             if n.startswith(".staging-")]
    assert len(stale) == 1
    # Live-submitter staging is protected; fake a dead submitter.
    dead_name = stale[0].replace(f"-{os.getpid()}-", "-999999999-", 1)
    os.rename(os.path.join(q.jobs_dir, stale[0]),
              os.path.join(q.jobs_dir, dead_name))
    report = recover_queue(q)
    assert report.staging_cleared == 1
    assert not any(n.startswith(".staging-")
                   for n in os.listdir(q.jobs_dir))


def test_clean_staging_spares_live_submitters(tmp_path):
    q = JobQueue(str(tmp_path))
    live = os.path.join(q.jobs_dir, f".staging-{os.getpid()}-x")
    os.makedirs(live)
    assert q.clean_staging() == 0
    assert os.path.isdir(live)


def test_lease_race_fault_loses_then_wins(tmp_path):
    q = JobQueue(str(tmp_path))
    q.submit(spec())
    with active(plan("queue.lease.race", every=1, max_fires=1)):
        assert q.claim() is None      # injected lost race
        job = q.claim()               # fault exhausted: claim sticks
    assert job is not None
    assert lease_live(q._lease_info(job))


# ----------------------------------------------------------------------
# store degradation / re-promotion
# ----------------------------------------------------------------------
def test_store_degrades_to_read_only_and_repromotes(tmp_path):
    events = []
    store = ShardedVerdictStore(
        str(tmp_path / "store"), degrade_after=2, probe_interval=2,
        on_event=lambda etype, fields: events.append(etype))
    with active(plan("store.append.error", prob=1.0)):
        store.append("aaaa", "valid")
        store.append("bbbb", "valid")
        assert store.read_only
    # Degraded, but lossless for this process: reads come from the
    # merged view (overlay included).
    assert store.get("aaaa") == "valid"
    assert "store_degraded" in events
    # Fault gone: overlay appends tick the probe, which re-promotes
    # and flushes the overlay to disk.
    store.append("cccc", "valid")
    store.append("dddd", "valid")
    assert not store.read_only
    assert store.repromotions == 1
    assert "store_repromoted" in events
    store.seal()
    reread = ShardedVerdictStore(str(tmp_path / "store"))
    assert {k: v for k, v in reread.load().items()} == {
        "aaaa": "valid", "bbbb": "valid",
        "cccc": "valid", "dddd": "valid"}


def test_store_seal_flushes_overlay(tmp_path):
    store = ShardedVerdictStore(str(tmp_path / "store"),
                                fsync_interval=1, degrade_after=1,
                                probe_interval=100)
    with active(plan("store.fsync.error", prob=1.0)):
        store.append("aaaa", "valid")
        assert store.read_only
    store.seal()  # attempts re-promotion before sealing
    assert ShardedVerdictStore(
        str(tmp_path / "store")).get("aaaa", refresh=True) == "valid"


# ----------------------------------------------------------------------
# journals and event logs at the edges
# ----------------------------------------------------------------------
def test_empty_journal_file_is_tolerated(tmp_path):
    path = str(tmp_path / "empty.jsonl")
    open(path, "w").close()
    assert load_journal_tolerant(path) == ([], 0)


def test_torn_only_journal_is_tolerated(tmp_path):
    path = str(tmp_path / "torn.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"seq": 0, "type": "run_beg')
    assert load_journal_tolerant(path) == ([], 1)


def test_recovery_classifies_empty_journal_as_fresh(tmp_path):
    q = JobQueue(str(tmp_path))
    job_id = q.submit(spec())
    open(q.get(job_id).journal_path, "w").close()
    report = recover_queue(q)
    assert report.fresh == [job_id]
    assert report.resumable == []


def test_event_log_round_trip_and_torn_tolerance(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with EventLog(path) as log:
        log.emit("job_done", job="a")
        log.emit("job_retry", job="a", attempt=1)
        log.emit("job_done", job="b")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"type": "job_do')  # killed writer
    events, dropped = load_events(path)
    assert dropped == 1
    assert [e["seq"] for e in events] == [0, 1, 2]
    assert event_counts(events) == {"job_done": 2, "job_retry": 1}
    assert load_events(str(tmp_path / "missing.jsonl")) == ([], 0)


# ----------------------------------------------------------------------
# supervisor: respawn and watchdog
# ----------------------------------------------------------------------
def test_supervised_drain_survives_worker_crashes(tmp_path, monkeypatch):
    root = str(tmp_path / "svc")
    q = JobQueue(root)
    ids = [q.submit(fast_spec(f"crashy{i}")) for i in range(3)]
    crash_plan = plan("worker.job.crash", every=1, max_fires=1)
    monkeypatch.setenv("REPRO_FAULT_PLAN", crash_plan.to_env())
    pool = WorkerPool(root, store_path=os.path.join(root, "store"),
                      workers=2)
    supervisor = Supervisor(pool, q, stall_timeout=15.0)
    assert supervisor.drain(timeout=90.0)
    assert pool.respawns >= 1
    for job_id in ids:
        assert q.status(job_id)["state"] == "done", job_id
        # Every job's first run died by SIGKILL, the second finished.
        assert q.attempt_counts(q.get(job_id))["start"] == 2
    events, _ = load_events(os.path.join(q.root, "events.jsonl"))
    assert event_counts(events).get("worker_respawned", 0) >= 1
    assert read_heartbeats(root)  # workers left liveness beats


def test_watchdog_kills_hung_worker(tmp_path, monkeypatch):
    root = str(tmp_path / "svc")
    q = JobQueue(root)
    job_id = q.submit(fast_spec("sleepy"))
    hang_plan = plan("worker.job.hang", every=1, max_fires=1, arg=20.0)
    monkeypatch.setenv("REPRO_FAULT_PLAN", hang_plan.to_env())
    pool = WorkerPool(root, store_path=os.path.join(root, "store"),
                      workers=1)
    supervisor = Supervisor(pool, q, stall_timeout=1.0,
                            poll_interval=0.1)
    assert supervisor.drain(timeout=60.0)
    assert supervisor.watchdog_kills >= 1
    assert q.status(job_id)["state"] == "done"
    events, _ = load_events(os.path.join(q.root, "events.jsonl"))
    assert event_counts(events).get("worker_watchdog_kill", 0) >= 1


# ----------------------------------------------------------------------
# hardened wire protocol
# ----------------------------------------------------------------------
@pytest.fixture
def service(tmp_path):
    from repro.service.server import OptimizationService

    svc = OptimizationService(str(tmp_path / "svc"), workers=1)
    svc.start()
    try:
        yield svc
    finally:
        svc.close()


def _raw(service, payload: bytes) -> dict:
    host, port = service.address
    with socket.create_connection((host, port), timeout=10.0) as sk:
        sk.sendall(payload)
        data = sk.makefile("rb").readline()
    return json.loads(data)


def test_malformed_json_gets_error_reply(service):
    reply = _raw(service, b"this is { not json\n")
    assert reply["ok"] is False and "malformed" in reply["error"]


def test_non_object_request_gets_error_reply(service):
    reply = _raw(service, b'"just a string"\n')
    assert reply["ok"] is False and "object" in reply["error"]
    reply = _raw(service, b'[1, 2, 3]\n')
    assert reply["ok"] is False


def test_deadletter_ops_over_the_wire(service, tmp_path):
    from repro.service.client import ServiceClient

    _host, port = service.address
    client = ServiceClient(port=port)
    assert client.deadletter() == {}
    assert client.requeue("no-such-job") is False
    # Quarantine one job directly in the spool, then requeue via wire.
    q = service.queue
    job_id = q.submit(spec("poison"))
    q.quarantine(q.claim(), "test poison")
    assert "poison" in json.dumps(client.deadletter())
    stats = client.stats()
    assert stats["deadletter"] == 1
    assert "supervisor" in stats
    assert client.requeue(job_id) is True
    final = client.wait(job_id, timeout=60.0)
    assert final["state"] in ("done", "failed")
