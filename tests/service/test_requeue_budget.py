"""Dead-letter requeue resets the durable retry budget.

A requeued job must start from zero attempts — otherwise the very
first transient error after an operator requeue re-quarantines it —
while the pre-quarantine attempt ledger survives as
``attempts.jsonl.prev`` for the post-mortem.
"""

import os

from repro.service.queue import JobQueue, JobSpec

BLIF = """.model tiny
.inputs a b
.outputs y
.names a b y
11 1
.end
"""


def _deadletter_one(q):
    job_id = q.submit(JobSpec(netlist=BLIF, fmt="blif", name="tiny",
                              config={}))
    job = q.claim()
    for _ in range(3):
        q.record_attempt(job, "start")
        q.record_attempt(job, "error", error="boom")
    q.quarantine(job, "retry budget spent")
    return job_id


def test_requeue_zeroes_durable_attempts(tmp_path):
    q = JobQueue(str(tmp_path))
    job_id = _deadletter_one(q)
    assert q.requeue(job_id)
    job = q.claim()
    assert job.job_id == job_id
    # Fresh budget: the attempt ledger restarts from zero...
    assert q.attempt_counts(job) == {}
    assert q.record_attempt(job, "start") == 1
    # ...and the quarantine history moved aside instead of vanishing.
    prev = job.attempts_path + ".prev"
    assert os.path.exists(prev)
    with open(prev, "r", encoding="utf-8") as fh:
        assert sum(1 for _ in fh) == 6


def test_second_quarantine_overwrites_prev_ledger(tmp_path):
    q = JobQueue(str(tmp_path))
    job_id = _deadletter_one(q)
    assert q.requeue(job_id)
    job = q.claim()
    q.record_attempt(job, "error", error="boom again")
    q.quarantine(job, "still failing")
    assert q.requeue(job_id)
    job = q.claim()
    assert q.attempt_counts(job) == {}
    with open(job.attempts_path + ".prev", "r", encoding="utf-8") as fh:
        assert sum(1 for _ in fh) == 1
