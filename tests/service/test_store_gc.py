"""Verdict-store GC: age/size-bounded retirement during compaction.

Verdicts are pure and re-provable, so the store may drop them — GC
costs a future re-prove, never correctness.  Compaction stamps every
key with the generation that folded it; ``gc_max_generations`` retires
keys that survived too many folds, ``gc_max_entries`` bounds each
shard's base (oldest stamps evicted first).  Both default to off:
an unbounded store behaves exactly as before, byte-compatible bases
included.
"""

import json
import os

import pytest

from repro.proof.backends import VALID
from repro.service.store import (
    ShardedProofCache, ShardedVerdictStore, StoreError,
)


def _seal(root, keys):
    writer = ShardedVerdictStore(root)
    for key in keys:
        writer.append(key, VALID)
    writer.close()


def test_gc_bounds_validated(tmp_path):
    with pytest.raises(StoreError):
        ShardedVerdictStore(str(tmp_path), gc_max_generations=0)
    with pytest.raises(StoreError):
        ShardedVerdictStore(str(tmp_path), gc_max_entries=0)


def test_no_gc_by_default_and_meta_invisible_to_readers(tmp_path):
    root = str(tmp_path / "store")
    _seal(root, [f"aa{i:03d}" for i in range(10)])
    store = ShardedVerdictStore(root)
    stats = store.compact()
    assert stats.retired == 0 and store.retired == 0
    # The GC bookkeeping lives in base.json but never leaks into reads.
    base = tmp_path / "store" / "shards" / "a" / "base.json"
    data = json.loads(base.read_text())
    assert data["__meta__"]["generation"] == 1
    assert len(data["__meta__"]["stamps"]) == 10
    assert len(store.load()) == 10
    assert "__meta__" not in store.load()
    store.close()


def test_age_gc_retires_old_generations(tmp_path):
    root = str(tmp_path / "store")
    gc = dict(gc_max_generations=2)
    # Generation 1: ten keys.  Generations 2 and 3: one fresh key each.
    _seal(root, [f"aa{i:03d}" for i in range(10)])
    ShardedVerdictStore(root, **gc).compact()
    for salt in ("x", "y"):
        _seal(root, [f"aa{salt}"])
        store = ShardedVerdictStore(root, **gc)
        stats = store.compact()
        retired = stats.retired
        store.close()
    # The third compaction (generation 3) retires the generation-1
    # keys (3 - 2 >= 1) but keeps generations 2 and 3.
    assert retired == 10
    reader = ShardedVerdictStore(root)
    assert sorted(reader.load()) == ["aax", "aay"]
    reader.close()


def test_size_gc_keeps_newest(tmp_path):
    root = str(tmp_path / "store")
    _seal(root, [f"aa0{i:02d}" for i in range(8)])
    ShardedVerdictStore(root).compact()          # gen 1: 8 keys
    _seal(root, [f"aa1{i:02d}" for i in range(4)])
    store = ShardedVerdictStore(root, gc_max_entries=5)
    stats = store.compact()                      # gen 2 folds 4 more
    store.close()
    # Twelve keys in shard "a", bounded to 5: the oldest-stamped
    # (gen-1, tie-broken by key) go first.
    assert stats.retired == 7
    reader = ShardedVerdictStore(root)
    merged = reader.load()
    assert len(merged) == 5
    assert sorted(merged) == ["aa007"] + [f"aa1{i:02d}" for i in range(4)]
    reader.close()


def test_gc_skips_shards_with_nothing_to_fold(tmp_path):
    """GC piggybacks on compaction: a shard with no sealed segments is
    never rewritten, so its base keeps every verdict regardless of the
    bounds."""
    root = str(tmp_path / "store")
    _seal(root, [f"aa{i:03d}" for i in range(8)])
    ShardedVerdictStore(root).compact()
    _seal(root, ["bb001"])                       # only shard "b" folds
    store = ShardedVerdictStore(root, gc_max_entries=1)
    stats = store.compact()
    store.close()
    assert stats.retired == 0
    reader = ShardedVerdictStore(root)
    assert len(reader.load()) == 9
    reader.close()


def test_gc_survives_pre_gc_bases(tmp_path):
    """A base written before the GC policy (no ``__meta__``) reads as
    oldest: a bounded compaction may retire its keys, an unbounded one
    keeps them — no crash either way."""
    root = str(tmp_path / "store")
    _seal(root, ["aa001", "aa002"])
    store = ShardedVerdictStore(root)
    store.compact()
    store.close()
    base = tmp_path / "store" / "shards" / "a" / "base.json"
    data = json.loads(base.read_text())
    del data["__meta__"]                         # simulate old base
    base.write_text(json.dumps(data))
    _seal(root, ["aa003"])
    store = ShardedVerdictStore(root, gc_max_generations=1)
    stats = store.compact()
    store.close()
    assert stats.retired == 2                    # unstamped == oldest
    reader = ShardedVerdictStore(root)
    assert sorted(reader.load()) == ["aa003"]
    reader.close()


def test_cache_passthrough_and_health_counter(tmp_path):
    root = str(tmp_path / "store")
    _seal(root, [f"aa{i:03d}" for i in range(6)])
    cache = ShardedProofCache(ShardedVerdictStore(root, gc_max_entries=2))
    stats = cache.compact()
    assert stats.retired == 4
    assert cache.health()["retired"] == 4
    cache.close()
