"""Job queue: spec validation, FIFO claims, leases, terminal states."""

import multiprocessing
import os

import pytest

from repro.service.queue import Job, JobQueue, JobSpec, QueueError

CTX = multiprocessing.get_context("fork")

BLIF = """\
.model tiny
.inputs a b
.outputs y
.names a b y
11 1
.end
"""


def spec(name="tiny", **config):
    return JobSpec(netlist=BLIF, fmt="blif", name=name, config=config)


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
def test_spec_rejects_empty_netlist():
    with pytest.raises(QueueError):
        JobSpec(netlist="  ").validate()


def test_spec_rejects_unknown_format():
    with pytest.raises(QueueError):
        JobSpec(netlist=BLIF, fmt="edif").validate()


def test_spec_rejects_unknown_override():
    with pytest.raises(QueueError):
        spec(not_a_knob=1).validate()


def test_spec_rejects_service_owned_overrides():
    for key in ("obs", "proof_store_path", "proof_cache_path"):
        with pytest.raises(QueueError):
            spec(**{key: "x"}).validate()


def test_spec_accepts_real_overrides_and_roundtrips():
    s = spec(max_rounds=3, proof="none")
    s.validate()
    again = JobSpec.from_json(s.to_json())
    assert again.config == {"max_rounds": 3, "proof": "none"}
    assert again.netlist == BLIF


# ----------------------------------------------------------------------
# submit / claim
# ----------------------------------------------------------------------
def test_submit_claim_fifo(tmp_path):
    q = JobQueue(str(tmp_path))
    first = q.submit(spec("first"))
    second = q.submit(spec("second"))
    assert q.depth() == 2
    assert q.claim().job_id == first
    assert q.claim().job_id == second
    assert q.claim() is None  # both leased


def test_claim_is_exclusive(tmp_path):
    q = JobQueue(str(tmp_path))
    q.submit(spec())
    job = q.claim()
    assert job is not None
    # Same-process second claim (and a fresh queue handle) both lose.
    assert q.claim() is None
    assert JobQueue(str(tmp_path)).claim() is None


def _claim_and_exit(root, out):
    q = JobQueue(root)
    job = q.claim()
    out.put(None if job is None else job.job_id)
    # exits without completing: lease pid goes dead -> stale


def test_stale_lease_reclaimed(tmp_path):
    q = JobQueue(str(tmp_path))
    job_id = q.submit(spec())
    out = CTX.Queue()
    proc = CTX.Process(target=_claim_and_exit, args=(str(tmp_path), out))
    proc.start()
    proc.join()
    assert out.get(timeout=5) == job_id
    # The claimant is dead: the job is claimable again (crash resume).
    job = q.claim()
    assert job is not None and job.job_id == job_id
    # ...but not while the (live) new lease holder exists.
    assert q.claim() is None


def test_status_lifecycle(tmp_path):
    q = JobQueue(str(tmp_path))
    job_id = q.submit(spec())
    assert q.status(job_id)["state"] == "queued"
    job = q.claim()
    assert q.status(job_id)["state"] == "running"
    q.complete(job, {"delay_after": 1.0}, netlist_blif=BLIF)
    status = q.status(job_id)
    assert status["state"] == "done"
    assert status["result"]["delay_after"] == 1.0
    assert os.path.exists(os.path.join(job.path, "result.blif"))
    assert q.claim() is None  # terminal jobs are never re-claimed


def test_failed_jobs_surface_error(tmp_path):
    q = JobQueue(str(tmp_path))
    job_id = q.submit(spec())
    q.fail(q.claim(), "boom")
    status = q.status(job_id)
    assert status["state"] == "failed"
    assert "boom" in status["error"]


def test_unknown_and_hostile_ids(tmp_path):
    q = JobQueue(str(tmp_path))
    assert q.status("nope")["state"] == "unknown"
    assert q.get("../../etc/passwd") is None
    assert q.get(".hidden") is None


def test_jobs_summary(tmp_path):
    q = JobQueue(str(tmp_path))
    a = q.submit(spec("a"))
    b = q.submit(spec("b"))
    q.complete(q.claim(), {})
    assert q.jobs() == {a: "done", b: "queued"}
    assert q.depth() == 1


def test_job_paths(tmp_path):
    q = JobQueue(str(tmp_path))
    job_id = q.submit(spec())
    job = q.get(job_id)
    assert isinstance(job, Job)
    for attr in ("journal_path", "result_path", "error_path",
                 "lease_path"):
        assert getattr(job, attr).startswith(job.path)
