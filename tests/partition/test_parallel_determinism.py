"""The partition plane's worker-count invariance contract.

``partition_workers=1`` and ``=4`` must produce the identical netlist
and the identical journal (modulo ``VOLATILE_FIELDS``): the region
plan, merge order, and conflict decisions are pure functions of
(netlist, config), and worker processes only decide *when* results
arrive.  Exercised end to end — real regions, real region-local GDO
runs, real merges — on the reduced C5315.
"""

import pytest

from repro.circuits.registry import build
from repro.library import mcnc_like
from repro.netlist.edit import structural_signature
from repro.obs import ObsConfig, load_journal, strip_volatile, validate_journal
from repro.opt import GdoConfig, gdo_optimize


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


def _cfg(workers, journal_path):
    return GdoConfig(
        n_words=8, verify_words=16, verify_final=False,
        max_rounds=2, max_passes_per_phase=6,
        max_trials_per_pass=48, max_proofs_per_pass=32,
        partition_workers=workers, partition_regions=4,
        partition_min_gates=32,
        obs=ObsConfig.full(journal_path=journal_path),
    )


@pytest.fixture(scope="module")
def runs(lib, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("partition")
    out = {}
    for workers in (1, 4):
        net = build("C5315", small=True)
        lib.rebind(net)
        journal_path = str(tmp / f"w{workers}.jsonl")
        result = gdo_optimize(net, lib, _cfg(workers, journal_path))
        out[workers] = (result, load_journal(journal_path))
    return out


def test_runs_are_not_vacuous(runs):
    result, _ = runs[1]
    s = result.stats
    assert s.history, "no region commits merged; test is vacuous"
    assert s.partition_regions == 4
    assert s.delay_after < s.delay_before


def test_identical_netlists(runs):
    r1, _ = runs[1]
    r4, _ = runs[4]
    assert structural_signature(r1.net) == structural_signature(r4.net)
    assert r1.stats.delay_after == r4.stats.delay_after
    assert r1.stats.area_after == r4.stats.area_after
    assert [(m.phase, m.kind, m.description) for m in r1.stats.history] \
        == [(m.phase, m.kind, m.description) for m in r4.stats.history]
    assert r1.stats.partition_conflicts == r4.stats.partition_conflicts


def test_identical_journals_modulo_volatile(runs):
    _, j1 = runs[1]
    _, j4 = runs[4]
    validate_journal(j1)
    validate_journal(j4)
    assert strip_volatile(j1) == strip_volatile(j4)


def test_journal_records_plan_not_schedule(runs):
    """No journal record may mention worker count — that is what makes
    the invariance hold by construction, not by luck."""
    _, j4 = runs[4]
    types = {rec["type"] for rec in j4}
    assert "partition_begin" in types
    assert "region" in types and "region_merge" in types
    for rec in j4:
        assert "workers" not in rec
