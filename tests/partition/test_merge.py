"""Merge coordinator: conflict rejection, re-queue, splice fidelity.

The crafted two-region netlist has an overlapping fanout cone by
construction — region 0's export ``x`` sits in region 1's halo — so
when an injected region optimizer makes both regions commit, the
canonical merge must accept region 0, reject region 1's stale commits,
re-queue it, and merge it cleanly against the refreshed master in the
next round.  The final netlist stays SAT-equivalent throughout, and
the journal is identical at any worker count.
"""

import pytest

from repro.library import mcnc_like
from repro.netlist.edit import structural_signature
from repro.netlist.netlist import Netlist
from repro.obs import ObsConfig, load_journal, strip_volatile, validate_journal
from repro.opt import GdoConfig, gdo_optimize
from repro.partition import (
    RegionResult, cone_signature, extract_region, partition_netlist,
    splice_region,
)
from repro.verify.equiv import check_equivalence


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


def two_cone_net(lib):
    """Two dominator cones where cone 1 reads cone 0's root ``x``."""
    net = Netlist("twocone")
    for pi in ("a", "b", "c", "d"):
        net.add_pi(pi)
    net.add_gate("g1", "AND", ["a", "b"])
    net.add_gate("x", "AND", ["g1", "c"])
    net.add_gate("h1", "OR", ["x", "d"])
    net.add_gate("y", "AND", ["h1", "x"])
    net.add_po("x")
    net.add_po("y")
    lib.rebind(net)
    return net


def _renamed_copy(sub, suffix):
    """A functionally identical copy with non-export gates renamed —
    the cheapest rewrite whose export cone signatures change."""
    out = Netlist(sub.name)
    for pi in sub.pis:
        out.add_pi(pi)
    exports = set(sub.pos)
    mapping = {}
    for sig in sub.topo_order():
        gate = sub.gates[sig]
        target = sig if sig in exports else sig + suffix
        mapping[sig] = target
        out.add_gate(target, gate.func,
                     [mapping.get(s, s) for s in gate.inputs],
                     cell=gate.cell)
    for po in sub.pos:
        out.add_po(po)
    return out


def crafted_optimizer(master, library, cfg, region):
    """Injected region optimizer: always commits a rename-rewrite that
    modifies every export cone."""
    sub = extract_region(master, region)
    before = {po: cone_signature(sub, po) for po in sub.pos}
    opt = _renamed_copy(sub, f"_r{region.index}")
    modified = [
        region.exports[i] for i, po in enumerate(opt.pos)
        if cone_signature(opt, po) != before[po]
    ]
    return RegionResult(
        index=region.index, net=opt, commits=1, modified=modified,
        delay_after=1.0,
        history=[("delay", "rename", "os2", 1.0, 1.0, 1.0, 1.0)],
    )


def _run(lib, workers, journal_path):
    from repro.partition import run_partitioned

    net = two_cone_net(lib)
    cfg = GdoConfig(
        partition_workers=workers, partition_regions=2,
        partition_min_gates=1, verify_final=False,
        obs=ObsConfig.full(journal_path=journal_path),
    )
    return net, run_partitioned(net, lib, cfg,
                                region_optimizer=crafted_optimizer)


def test_partition_puts_x_on_the_boundary(lib):
    net = two_cone_net(lib)
    part = partition_netlist(net, 2, library=lib)
    assert len(part.regions) == 2
    assert "x" in part.regions[0].exports
    assert "x" in part.regions[1].halo


def test_conflict_is_rejected_then_requeued_then_merged(lib, tmp_path):
    journal_path = str(tmp_path / "conflict.jsonl")
    original, result = _run(lib, 1, journal_path)
    s = result.stats
    assert s.partition_regions == 2
    assert s.partition_conflicts == 1
    assert s.partition_rounds == 2
    # Both regions merged in the end (one of them on the second try).
    assert len(s.history) == 2
    assert {m.description for m in s.history} == {"r0:rename", "r1:rename"}
    assert check_equivalence(original, result.net, n_words=16, seed=3)

    records = load_journal(journal_path)
    validate_journal(records)
    by_type = {}
    for rec in records:
        by_type.setdefault(rec["type"], []).append(rec)
    assert len(by_type["region_merge"]) == 2
    assert len(by_type["region_reject"]) == 1
    assert len(by_type["region_requeue"]) == 1
    reject = by_type["region_reject"][0]
    assert reject["region"] == 1 and reject["round"] == 1
    assert reject["overlap"] == 1
    merged_rounds = {(r["region"], r["round"])
                     for r in by_type["region_merge"]}
    assert merged_rounds == {(0, 1), (1, 2)}
    end = by_type["partition_end"][0]
    assert end["merged"] == 2 and end["rejected"] == 1


def test_worker_count_never_shows_in_netlist_or_journal(lib, tmp_path):
    j1 = str(tmp_path / "w1.jsonl")
    j4 = str(tmp_path / "w4.jsonl")
    _, r1 = _run(lib, 1, j1)
    _, r4 = _run(lib, 4, j4)
    assert structural_signature(r1.net) == structural_signature(r4.net)
    assert (strip_volatile(load_journal(j1))
            == strip_volatile(load_journal(j4)))


def test_splice_of_untouched_region_is_identity(lib):
    net = two_cone_net(lib)
    sig = structural_signature(net)
    part = partition_netlist(net, 2, library=lib)
    for region in part.regions:
        sub = extract_region(net, region)
        spliced = splice_region(net, region, sub)
        assert sorted(spliced) == sorted(region.gates)
    assert structural_signature(net) == sig


def test_partition_workers_routes_through_gdo_optimize(lib):
    """``GdoConfig.partition_workers`` is the only switch: the public
    entry point must hand the run to the partition plane."""
    net = two_cone_net(lib)
    cfg = GdoConfig(partition_workers=2, partition_regions=2,
                    partition_min_gates=1, verify_final=True,
                    n_words=8, verify_words=16)
    result = gdo_optimize(net, lib, cfg)
    assert result.stats.partition_regions == 2
    assert result.stats.equivalent is True
