"""Dominator-cone partitioning: coverage, halos, determinism."""

import pickle

import pytest

from repro.analysis.dominators import Dominators
from repro.circuits.registry import build
from repro.flat import FlatView
from repro.library import mcnc_like
from repro.partition import (
    dominator_cones, extract_region, make_region, partition_netlist,
    signal_rank,
)


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


@pytest.fixture(scope="module")
def net(lib):
    circuit = build("C880", small=True)
    lib.rebind(circuit)
    return circuit


def test_cones_cover_all_gates_disjointly(net):
    cones = dominator_cones(net)
    seen = []
    for cone in cones:
        seen.extend(cone)
    assert sorted(seen) == sorted(net.topo_order())
    assert len(seen) == len(set(seen))


def test_cone_roots_are_outermost_dominators(net):
    doms = Dominators(net)
    roots = {cone[-1] for cone in dominator_cones(net)}
    # A cone root is exactly a gate that no other gate dominates.
    expected = {sig for sig in net.topo_order()
                if not list(doms.chain(sig))}
    assert roots == expected


def test_partition_covers_and_respects_k(net, lib):
    for k in (1, 2, 4, 7):
        part = partition_netlist(net, k, library=lib)
        assert 1 <= len(part.regions) <= k
        seen = []
        for region in part.regions:
            seen.extend(region.gates)
        assert sorted(seen) == sorted(net.topo_order())
        # Regions are numbered by earliest member in topo rank.
        assert [r.index for r in part.regions] == list(
            range(len(part.regions)))


def test_halo_is_read_only_and_exports_are_read_or_po(net, lib):
    part = partition_netlist(net, 4, library=lib)
    pos = set(net.pos)
    for region in part.regions:
        members = set(region.gates)
        produced = {g for g in region.gates}
        for sig in region.halo:
            assert sig not in produced, "halo signal produced in-region"
        external_reads = set()
        for out in net.topo_order():
            if out in members:
                continue
            external_reads.update(net.gates[out].inputs)
        for sig in region.exports:
            assert sig in members
            assert sig in external_reads or sig in pos


def test_partition_is_deterministic(net, lib):
    a = partition_netlist(net, 4, library=lib)
    b = partition_netlist(net, 4, library=lib)
    assert [r.gates for r in a.regions] == [r.gates for r in b.regions]
    assert [r.halo for r in a.regions] == [r.halo for r in b.regions]
    assert a.cut_edges == b.cut_edges


def test_make_region_recomputes_boundary(net, lib):
    part = partition_netlist(net, 4, library=lib)
    rank = signal_rank(net)
    for region in part.regions:
        again = make_region(net, region.index, list(region.gates), rank)
        assert again.halo == region.halo
        assert again.exports == region.exports


def test_extracted_region_pickles_with_func_singletons(net, lib):
    """Regions must cross the fork queue: ``GateFunc.__reduce__``
    restores the function singletons so ``FlatView.build`` (which
    asserts singleton identity) accepts an unpickled netlist."""
    part = partition_netlist(net, 4, library=lib)
    sub = extract_region(net, part.regions[0])
    clone = pickle.loads(pickle.dumps(sub))
    assert sorted(clone.gates) == sorted(sub.gates)
    lib.rebind(clone)
    FlatView.build(clone, lib)
