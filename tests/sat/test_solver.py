"""Tests for the CDCL SAT solver."""

import itertools
import random

import pytest

from repro.cnf import CNF, from_dimacs, to_dimacs
from repro.sat import Solver, SolverBudgetExceeded, solve_cnf
from repro.sat.solver import _luby


def brute_force_sat(clauses, n_vars):
    for bits in itertools.product((False, True), repeat=n_vars):
        if all(any((l > 0) == bits[abs(l) - 1] for l in cl) for cl in clauses):
            return True
    return False


def test_trivial():
    s = Solver()
    s.add_clause([1])
    assert s.solve().sat
    assert s.solve().value(1) is True


def test_unit_conflict():
    s = Solver()
    s.add_clause([1])
    s.add_clause([-1])
    assert not s.solve().sat


def test_empty_clause_unsat():
    s = Solver()
    s.add_clause([])
    assert not s.solve().sat


def test_tautology_ignored():
    s = Solver()
    s.add_clause([1, -1])
    assert s.solve().sat


def test_random_3sat_vs_brute_force():
    rnd = random.Random(11)
    for trial in range(120):
        n = rnd.randint(3, 8)
        m = rnd.randint(2, 34)
        clauses = [
            tuple(rnd.choice((1, -1)) * rnd.randint(1, n)
                  for _ in range(rnd.randint(1, 3)))
            for _ in range(m)
        ]
        s = Solver()
        for cl in clauses:
            s.add_clause(cl)
        result = s.solve()
        assert result.sat == brute_force_sat(clauses, n), (trial, clauses)
        if result.sat:
            for cl in clauses:
                assert any((l > 0) == result.value(abs(l)) for l in cl)


def test_pigeonhole_unsat():
    def php(n_pigeons, n_holes):
        s = Solver()

        def var(p, h):
            return p * n_holes + h + 1
        for p in range(n_pigeons):
            s.add_clause([var(p, h) for h in range(n_holes)])
        for h in range(n_holes):
            for p1 in range(n_pigeons):
                for p2 in range(p1 + 1, n_pigeons):
                    s.add_clause([-var(p1, h), -var(p2, h)])
        return s.solve()

    assert not php(4, 3).sat
    assert not php(6, 5).sat
    assert php(3, 3).sat


def test_assumptions():
    s = Solver()
    s.add_clause([1, 2])
    s.add_clause([-1, 3])
    assert s.solve(assumptions=[-2]).sat        # forces 1, 3
    assert not s.solve(assumptions=[-2, -3]).sat
    assert s.solve(assumptions=[2]).sat
    # solver remains reusable after assumption UNSAT
    assert s.solve().sat


def test_assumption_order_independent():
    s = Solver()
    s.add_clause([1, 2, 3])
    s.add_clause([-1, -2])
    for perm in itertools.permutations([-3, 1]):
        assert s.solve(assumptions=list(perm)).sat


def test_budget_exceeded():
    # A hard UNSAT instance with a 1-conflict budget must raise.
    s = Solver()

    def var(p, h):
        return p * 5 + h + 1
    for p in range(6):
        s.add_clause([var(p, h) for h in range(5)])
    for h in range(5):
        for p1 in range(6):
            for p2 in range(p1 + 1, 6):
                s.add_clause([-var(p1, h), -var(p2, h)])
    with pytest.raises(SolverBudgetExceeded):
        s.solve(max_conflicts=1)


def test_luby_sequence():
    assert [_luby(i) for i in range(1, 16)] == \
        [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


def test_solve_cnf_and_dimacs_roundtrip():
    cnf = CNF()
    v1, v2 = cnf.pool.var("a"), cnf.pool.var("b")
    cnf.add((v1, v2))
    cnf.add((-v1, v2))
    assert solve_cnf(cnf).sat
    text = to_dimacs(cnf, comment="two clauses")
    again = from_dimacs(text)
    assert len(again) == 2
    assert again.n_vars == 2
    assert solve_cnf(again).sat


def test_cnf_evaluate():
    cnf = CNF()
    a, b = cnf.pool.var("a"), cnf.pool.var("b")
    cnf.add((a, -b))
    assert cnf.evaluate({a: True, b: True})
    assert not cnf.evaluate({a: False, b: True})


def test_incremental_reuse():
    s = Solver()
    s.add_clause([1, 2])
    assert s.solve().sat
    s.add_clause([-1])
    assert s.solve().sat
    s.add_clause([-2])
    assert not s.solve().sat
