"""Canonical obligation hashing: name-independence and soundness."""


from repro.clauses.pvcc import Candidate
from repro.netlist.netlist import Netlist
from repro.proof import (
    INVALID, VALID, align_interfaces, build_obligation, prove_serialized,
)
from repro.proof.backends import LadderSpec


def _pair(prefix: str, equivalent: bool = True):
    """A (left, right) cone pair over shared PIs a, b, c.

    Left computes ``(a & b) | c``; right computes the same when
    ``equivalent`` (via De Morgan'd structure) else ``(a | b) & c``.
    """
    left = Netlist(f"{prefix}_l")
    for pi in ("a", "b", "c"):
        left.add_pi(pi)
    left.add_gate(f"{prefix}_and", "AND", ["a", "b"])
    left.add_gate(f"{prefix}_or", "OR", [f"{prefix}_and", "c"])
    left.set_pos([f"{prefix}_or"])

    right = Netlist(f"{prefix}_r")
    for pi in ("a", "b", "c"):
        right.add_pi(pi)
    if equivalent:
        right.add_gate(f"{prefix}_na", "NAND", ["a", "b"])
        right.add_gate(f"{prefix}_nc", "INV", ["c"])
        right.add_gate(f"{prefix}_no", "NAND",
                       [f"{prefix}_na", f"{prefix}_nc"])
        right.set_pos([f"{prefix}_no"])
    else:
        right.add_gate(f"{prefix}_or", "OR", ["a", "b"])
        right.add_gate(f"{prefix}_and", "AND", [f"{prefix}_or", "c"])
        right.set_pos([f"{prefix}_and"])
    return left, right


def _cand(target: str = "t") -> Candidate:
    return Candidate(target=target, kind="OS2", sources=("s",))


def test_key_is_name_independent():
    l1, r1 = _pair("x")
    l2, r2 = _pair("completely_different_names")
    ob1 = build_obligation(l1, r1, _cand())
    ob2 = build_obligation(l2, r2, _cand())
    assert ob1.key == ob2.key
    assert ob1.left == ob2.left and ob1.right == ob2.right


def test_key_differs_for_different_cones():
    l1, r1 = _pair("x", equivalent=True)
    l2, r2 = _pair("x2", equivalent=False)
    assert build_obligation(l1, r1, _cand()).key != \
        build_obligation(l2, r2, _cand()).key


def test_key_folds_in_clause_signature():
    l1, r1 = _pair("x")
    l2, r2 = _pair("y")
    same_cones_a = build_obligation(l1, r1, _cand())
    same_cones_b = build_obligation(
        l2, r2, Candidate(target="t", kind="OS2", sources=("s",),
                          inverted=True))
    assert same_cones_a.key != same_cones_b.key


def test_rebuilt_netlists_prove_correctly():
    spec = LadderSpec(mode="sat")
    l_eq, r_eq = _pair("eq", equivalent=True)
    ob = build_obligation(l_eq, r_eq, _cand())
    _, verdict, _, _ = prove_serialized((ob.key, ob.left, ob.right, spec))
    assert verdict == VALID

    l_ne, r_ne = _pair("ne", equivalent=False)
    ob = build_obligation(l_ne, r_ne, _cand())
    _, verdict, _, _ = prove_serialized((ob.key, ob.left, ob.right, spec))
    assert verdict == INVALID


def test_obligation_is_picklable():
    import pickle

    l, r = _pair("p")
    ob = build_obligation(l, r, _cand())
    clone = pickle.loads(pickle.dumps(ob))
    assert clone == ob
    left, right = clone.netlists()
    assert left.pis == right.pis  # interfaces aligned after rebuild


def test_align_interfaces_unions_pis():
    left = Netlist("l")
    left.add_pi("a")
    left.add_gate("g", "INV", ["a"])
    left.set_pos(["g"])
    right = Netlist("r")
    right.add_pi("b")
    right.add_gate("h", "INV", ["b"])
    right.set_pos(["h"])
    align_interfaces(left, right, ["a", "b"])
    assert left.pis == ["a", "b"] == right.pis
