"""LRU behaviour and persistence policy of the verdict cache."""

import json

from repro.proof import ProofCache
from repro.proof.backends import INVALID, UNKNOWN, VALID


def test_lru_evicts_oldest():
    cache = ProofCache(max_entries=2)
    cache.put("k1", VALID)
    cache.put("k2", INVALID)
    cache.put("k3", VALID)
    assert cache.get("k1") is None
    assert cache.get("k2") == INVALID
    assert cache.get("k3") == VALID


def test_lru_get_refreshes_recency():
    cache = ProofCache(max_entries=2)
    cache.put("k1", VALID)
    cache.put("k2", INVALID)
    cache.get("k1")            # k2 is now least-recent
    cache.put("k3", VALID)
    assert cache.get("k2") is None
    assert cache.get("k1") == VALID


def test_persistence_roundtrip_definitive_only(tmp_path):
    path = str(tmp_path / "verdicts.json")
    cache = ProofCache(max_entries=8, path=path)
    cache.put("kv", VALID)
    cache.put("ki", INVALID)
    cache.put("ku", UNKNOWN)   # budget-relative: must not persist
    cache.flush()

    with open(path, encoding="utf-8") as fh:
        on_disk = json.load(fh)
    assert on_disk == {"kv": VALID, "ki": INVALID}

    reloaded = ProofCache(max_entries=8, path=path)
    assert reloaded.get("kv") == VALID
    assert reloaded.get("ki") == INVALID
    assert reloaded.get("ku") is None


def test_corrupt_store_is_ignored(tmp_path):
    path = tmp_path / "verdicts.json"
    path.write_text("{not json")
    cache = ProofCache(path=str(path))
    assert cache.get("anything") is None
    cache.put("k", VALID)
    cache.flush()
    assert json.loads(path.read_text()) == {"k": VALID}
