"""LRU behaviour and persistence policy of the verdict cache."""

import json

from repro.proof import ProofCache
from repro.proof.backends import INVALID, UNKNOWN, VALID


def test_lru_evicts_oldest():
    cache = ProofCache(max_entries=2)
    cache.put("k1", VALID)
    cache.put("k2", INVALID)
    cache.put("k3", VALID)
    assert cache.get("k1") is None
    assert cache.get("k2") == INVALID
    assert cache.get("k3") == VALID


def test_lru_get_refreshes_recency():
    cache = ProofCache(max_entries=2)
    cache.put("k1", VALID)
    cache.put("k2", INVALID)
    cache.get("k1")            # k2 is now least-recent
    cache.put("k3", VALID)
    assert cache.get("k2") is None
    assert cache.get("k1") == VALID


def test_persistence_roundtrip_definitive_only(tmp_path):
    path = str(tmp_path / "verdicts.json")
    cache = ProofCache(max_entries=8, path=path)
    cache.put("kv", VALID)
    cache.put("ki", INVALID)
    cache.put("ku", UNKNOWN)   # budget-relative: must not persist
    cache.flush()

    with open(path, encoding="utf-8") as fh:
        on_disk = json.load(fh)
    assert on_disk == {"kv": VALID, "ki": INVALID}

    reloaded = ProofCache(max_entries=8, path=path)
    assert reloaded.get("kv") == VALID
    assert reloaded.get("ki") == INVALID
    assert reloaded.get("ku") is None


def test_corrupt_store_is_ignored(tmp_path):
    path = tmp_path / "verdicts.json"
    path.write_text("{not json")
    cache = ProofCache(path=str(path))
    assert cache.get("anything") is None
    cache.put("k", VALID)
    cache.flush()
    assert json.loads(path.read_text()) == {"k": VALID}


# ----------------------------------------------------------------------
# concurrent flush: disk contents are merged, not clobbered
# ----------------------------------------------------------------------
def test_flush_merges_concurrent_writers(tmp_path):
    """Two caches over one path: the second flush must not wipe the
    first writer's verdicts (the pre-fix last-writer-wins bug)."""
    path = str(tmp_path / "verdicts.json")
    a = ProofCache(max_entries=8, path=path)
    b = ProofCache(max_entries=8, path=path)  # loaded before a flushed
    a.put("ka", VALID)
    b.put("kb", INVALID)
    a.flush()
    b.flush()   # pre-fix: rewrote the file without "ka"

    with open(path, encoding="utf-8") as fh:
        assert json.load(fh) == {"ka": VALID, "kb": INVALID}


def test_flush_merge_is_idempotent_and_visible(tmp_path):
    path = str(tmp_path / "verdicts.json")
    a = ProofCache(max_entries=8, path=path)
    a.put("k1", VALID)
    a.flush()
    a.flush()  # no-op: nothing dirty, file unchanged
    b = ProofCache(max_entries=8, path=path)
    b.put("k2", INVALID)
    b.flush()
    # a can pick up b's verdict by reloading.
    c = ProofCache(max_entries=8, path=path)
    assert c.get("k1") == VALID and c.get("k2") == INVALID


def _flush_worker(path, tag, n):
    cache = ProofCache(max_entries=n + 1, path=path)
    for i in range(n):
        cache.put(f"{tag}{i:03d}", VALID)
    cache.flush()


def test_flush_merge_under_process_concurrency(tmp_path):
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    path = str(tmp_path / "verdicts.json")
    workers, per = 4, 25
    procs = [
        ctx.Process(target=_flush_worker, args=(path, f"w{w}", per))
        for w in range(workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
    assert all(p.exitcode == 0 for p in procs)
    with open(path, encoding="utf-8") as fh:
        merged = json.load(fh)
    assert len(merged) == workers * per
