"""Broker scheduling: dedupe, ladder fallback, pool/serial agreement."""

import pytest

from repro.netlist.netlist import Netlist
from repro.proof import ProofBroker, build_obligation
from repro.proof import backends as backends_mod
from repro.proof.backends import INVALID, UNKNOWN, VALID
from repro.clauses.pvcc import Candidate


def _cand(tag: str) -> Candidate:
    return Candidate(target=f"t{tag}", kind="OS2", sources=("s",))


def _obligation(n_and: int, equivalent: bool = True, tag: str = ""):
    """An obligation over an ``n_and``-input AND tree vs. its mirror."""
    def tree(name, flip):
        net = Netlist(name)
        pis = [net.add_pi(f"a{i}") for i in range(n_and)]
        prev = pis[0]
        for i, pi in enumerate(pis[1:]):
            out = f"{name}_g{i}"
            ins = [pi, prev] if flip else [prev, pi]
            net.add_gate(out, "AND", ins)
            prev = out
        if not equivalent and flip:
            net.add_gate(f"{name}_inv", "INV", [prev])
            prev = f"{name}_inv"
        net.set_pos([prev])
        return net

    return build_obligation(tree(f"l{tag}", False), tree(f"r{tag}", True),
                            _cand(tag or str(n_and)))


def test_batch_dedupes_by_key():
    broker = ProofBroker(mode="sat", workers=1)
    ob = _obligation(3)
    verdicts = broker.prove_batch([ob, ob, ob, None])
    assert verdicts == {ob.key: VALID}
    assert broker.counters.deduped == 2
    assert broker.counters.dispatched == 1
    broker.close()


def test_batch_serves_cached_keys_without_dispatch():
    broker = ProofBroker(mode="sat", workers=1)
    ob = _obligation(4)
    broker.prove_batch([ob])
    assert broker.counters.cache_misses == 1
    broker.prove_batch([ob])
    assert broker.counters.cache_hits == 1
    assert broker.counters.dispatched == 1
    broker.close()


def test_exhausted_ladder_yields_unknown_with_counters(monkeypatch):
    monkeypatch.setattr(backends_mod, "prove_pair",
                        lambda *a, **k: UNKNOWN)
    broker = ProofBroker(mode="sat", workers=1)
    ob = _obligation(3)
    verdicts = broker.prove_batch([ob])
    assert verdicts == {ob.key: UNKNOWN}
    c = broker.counters
    # sat @ base, sat @ escalated (retry), bdd (fallback), then give up.
    assert c.sat_unknown == 2 and c.bdd_unknown == 1
    assert c.retries == 1 and c.fallbacks == 1
    assert c.unknown_final == 1
    broker.close()


def test_unknown_not_served_from_persistent_store(tmp_path, monkeypatch):
    path = str(tmp_path / "verdicts.json")
    monkeypatch.setattr(backends_mod, "prove_pair",
                        lambda *a, **k: UNKNOWN)
    broker = ProofBroker(mode="sat", workers=1, cache_path=path)
    ob = _obligation(3)
    broker.prove_batch([ob])
    broker.close()

    monkeypatch.undo()
    fresh = ProofBroker(mode="sat", workers=1, cache_path=path)
    verdicts = fresh.prove_batch([ob])
    # A bigger-budget rerun must re-attempt, not replay the UNKNOWN.
    assert verdicts == {ob.key: VALID}
    fresh.close()


def test_parallel_and_serial_verdicts_agree():
    obs = [_obligation(n, equivalent=(n % 2 == 0), tag=str(n))
           for n in range(2, 8)]
    serial = ProofBroker(mode="sat", workers=1)
    parallel = ProofBroker(mode="sat", workers=2)
    try:
        v_serial = serial.prove_batch(obs)
        v_parallel = parallel.prove_batch(obs)
        assert v_serial == v_parallel
        assert set(v_serial.values()) == {VALID, INVALID}
    finally:
        serial.close()
        parallel.close()


def test_counters_are_per_run():
    broker = ProofBroker(mode="sat", workers=1)
    broker.begin_run()
    broker.prove_batch([_obligation(3)])
    first = broker.take_counters()
    assert first.dispatched == 1
    # Second run on a shared broker starts from zero but keeps the cache.
    broker.begin_run()
    broker.prove_batch([_obligation(3)])
    second = broker.take_counters()
    assert second.dispatched == 0 and second.cache_hits == 1
    broker.close()


def test_mode_none_never_proves(monkeypatch):
    def boom(*a, **k):
        raise AssertionError("prover invoked in proof='none' mode")

    monkeypatch.setattr(backends_mod, "prove_pair", boom)
    broker = ProofBroker(mode="none", workers=1)
    assert broker.prove_batch([_obligation(3)]) == {}
    broker.close()


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        ProofBroker(mode="smt")
