"""Tests for genlib parsing/writing and the built-in libraries."""

import pytest

from repro.library import (
    Cell, GenlibError, PinTiming, TechLibrary, cell_formula, mcnc_like,
    parse_genlib, unit_delay_library, write_genlib,
)
from repro.netlist import AND, INV, MUX21, NAND, Netlist, XOR


def test_parse_simple_cell():
    lib = parse_genlib(
        "GATE my_nand 2.5 o=!(a*b);\n"
        "  PIN * INV 1.3 999 0.9 0.3 1.1 0.4\n"
    )
    cell = lib["my_nand"]
    assert cell.area == 2.5
    assert cell.func is NAND
    assert cell.nin == 2
    assert cell.input_load == 1.3
    # max of rise/fall arcs
    assert cell.pins[0].block == 1.1
    assert cell.pins[0].drive == 0.4


def test_parse_named_pins():
    lib = parse_genlib(
        "GATE g 1 o=a*b;\n"
        "  PIN a NONINV 1 999 1.0 0.1 1.0 0.1\n"
        "  PIN b NONINV 2 999 2.0 0.2 2.0 0.2\n"
    )
    cell = lib["g"]
    assert cell.pins[0].block == 1.0
    assert cell.pins[1].block == 2.0
    assert cell.input_load == 2  # max of pin loads


def test_parse_postfix_negation_and_comments():
    lib = parse_genlib(
        "# comment line\n"
        "GATE inv 1 o=a'; PIN * INV 1 999 1 0.1 1 0.1\n"
    )
    assert lib["inv"].func is INV


def test_parse_mux_with_permuted_pins():
    lib = parse_genlib(
        "GATE mx 3 o=(a*!s)+(b*s); PIN * UNKNOWN 1 999 1 0.1 1 0.1"
    )
    assert lib["mx"].func is MUX21


def test_unknown_function_raises_or_skips():
    # A 3-input function outside the primitive set (2-of-3 exactly).
    src = ("GATE weird 1 o=(a*b*!c)+(a*!b*c)+(!a*b*c);"
           " PIN * UNKNOWN 1 999 1 0.1 1 0.1")
    with pytest.raises(GenlibError):
        parse_genlib(src)
    assert len(parse_genlib(src, skip_unknown=True)) == 0


def test_bad_expression():
    with pytest.raises(GenlibError):
        parse_genlib("GATE g 1 o=a*(b; PIN * INV 1 999 1 0.1 1 0.1")


def test_roundtrip_builtin():
    lib = mcnc_like()
    text = write_genlib(lib)
    again = parse_genlib(text)
    assert set(again.cells) == set(lib.cells)
    for name, cell in lib.cells.items():
        dup = again[name]
        assert dup.func is cell.func
        assert dup.area == pytest.approx(cell.area)
        assert dup.nin == cell.nin


def test_mcnc_like_contents():
    lib = mcnc_like()
    assert lib.cell_for(AND, 2).name == "and2"
    assert lib.cell_for(NAND, 3) is not None
    assert lib.cell_for(XOR, 2) is not None
    assert lib.cell_for(INV, 1).area <= min(c.area for c in lib)
    assert lib.has_func(AND, 4)
    assert not lib.has_func(AND, 9)


def test_unit_library_delays():
    lib = unit_delay_library()
    for cell in lib:
        assert cell.area == 1.0
        for pin in cell.pins:
            assert pin.delay(10.0) == 1.0


def test_rebind_and_area():
    lib = mcnc_like()
    net = Netlist("t")
    net.add_pi("a")
    net.add_pi("b")
    net.add_gate("x", "AND", ["a", "b"])
    net.add_gate("y", "INV", ["x"])
    net.set_pos(["y"])
    assert lib.rebind(net) == 0
    assert net.gates["x"].cell == "and2"
    area = lib.netlist_area(net)
    assert area == pytest.approx(lib["and2"].area + lib["inv1"].area)


def test_gate_fallbacks_for_unbound():
    lib = mcnc_like()
    net = Netlist("t")
    net.add_pi("a")
    for k in range(9):
        net.add_pi(f"p{k}")
    net.add_gate("wide", "AND", [f"p{k}" for k in range(9)])
    net.set_pos(["wide"])
    assert lib.rebind(net) == 1  # no and9 cell
    gate = net.gates["wide"]
    assert lib.gate_area(gate) > 0
    assert lib.gate_pin_timing(gate, 0).delay(1.0) > 0


def test_duplicate_cell_rejected():
    cell = Cell("x", 1.0, AND, 2)
    with pytest.raises(ValueError):
        TechLibrary("dup", [cell, Cell("x", 2.0, AND, 2)])


def test_pin_timing_mismatch_rejected():
    with pytest.raises(ValueError):
        Cell("bad", 1.0, AND, 3, pins=[PinTiming(1, 0.1), PinTiming(1, 0.1)])


def test_cell_formula_all_supported():
    for cell in mcnc_like():
        assert cell_formula(cell).startswith("o=")
