"""Tests for CNF encoding of netlists."""

import itertools

import pytest

from repro.cnf import CNF, VarPool, encode_netlist, from_dimacs, to_dimacs
from repro.netlist import Netlist
from repro.sat import Solver, solve_cnf
from repro.sim import truth_table_of


def fig1():
    net = Netlist("fig1")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("d", "AND", ["a", "b"])
    net.add_gate("e", "INV", ["c"])
    net.add_gate("f", "OR", ["d", "e"])
    net.set_pos(["f"])
    return net


def test_var_pool():
    pool = VarPool()
    a = pool.var("a")
    assert pool.var("a") == a
    b = pool.var("b")
    assert b != a
    assert pool.fresh() == 3
    assert pool.lookup("a") == a
    assert pool.lookup("zz") is None
    assert "a" in pool and "zz" not in pool


def test_characteristic_function_counts_models():
    """The characteristic formula has exactly 2^|PI| models."""
    net = fig1()
    cnf, varmap = encode_netlist(net)
    count = 0
    nv = cnf.n_vars
    for bits in itertools.product((False, True), repeat=nv):
        if cnf.evaluate({v: bits[v - 1] for v in range(1, nv + 1)}):
            count += 1
    assert count == 8


def test_encoding_consistent_with_simulation():
    net = fig1()
    cnf, varmap = encode_netlist(net)
    table = truth_table_of(net)
    for v in range(8):
        assumptions = []
        for i, pi in enumerate(net.pis):
            var = varmap[pi]
            assumptions.append(var if (v >> i) & 1 else -var)
        # Force f to the wrong value: must be UNSAT.
        fvar = varmap["f"]
        wrong = -fvar if table[v] else fvar
        s = Solver()
        s.add_cnf(cnf)
        assert not s.solve(assumptions=assumptions + [wrong]).sat
        right = fvar if table[v] else -fvar
        assert s.solve(assumptions=assumptions + [right]).sat


def test_strash_shares_identical_gates():
    net = Netlist("dup")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("x1", "AND", ["a", "b"])
    net.add_gate("x2", "AND", ["b", "a"])  # commutative duplicate
    net.add_gate("y", "OR", ["x1", "x2"])
    net.set_pos(["y"])
    cnf, varmap = encode_netlist(net, strash={})
    assert varmap["x1"] == varmap["x2"]


def test_strash_shared_between_two_netlists():
    left = fig1()
    right = fig1().copy(name="copy")
    cnf = CNF()
    strash = {}
    _, vl = encode_netlist(left, cnf, tag="L", strash=strash)
    n_after_left = len(cnf.clauses)
    _, vr = encode_netlist(right, cnf, tag="R", strash=strash)
    # identical circuits: second encode adds no clauses at all
    assert len(cnf.clauses) == n_after_left
    assert vl["f"] == vr["f"]


def test_dimacs_roundtrip():
    net = fig1()
    cnf, _ = encode_netlist(net)
    text = to_dimacs(cnf, comment="fig1 characteristic formula")
    assert text.startswith("c fig1")
    again = from_dimacs(text)
    assert len(again) == len(cnf)
    assert again.n_vars == cnf.n_vars
    assert solve_cnf(again).sat


def test_empty_clause_rejected():
    cnf = CNF()
    with pytest.raises(ValueError):
        cnf.add(())
