"""The deterministic fault plane (DESIGN.md §11).

Contracts:

* activation sequences are pure functions of ``(seed, scope, point)``
  — same plan, same firings, regardless of what other points do;
* :meth:`FaultPlane.schedule` replays exactly what :func:`fault`
  decided live (the chaos soak's verification primitive);
* plans round-trip through JSON and the environment;
* the disabled fast path costs <2% of a GDO-scale event volume
  (computed, not raced — same idiom as the obs overhead guard).
"""

import time

import pytest

from repro.faults import (
    FaultPlan, FaultPlanError, FaultPlane, FaultSpec, PLAN_ENV, active,
    active_plane, catalog, fault, fault_arg, install_plane,
)


def _plan(seed=7, scope="", **kw):
    return FaultPlan(seed=seed, scope=scope,
                     specs=(FaultSpec(pattern="p.x", **kw),))


# ----------------------------------------------------------------------
# specs and plans
# ----------------------------------------------------------------------
def test_spec_needs_exactly_one_trigger():
    with pytest.raises(FaultPlanError):
        FaultSpec(pattern="a").validate()          # neither
    with pytest.raises(FaultPlanError):
        FaultSpec(pattern="a", prob=0.5, every=2).validate()  # both
    with pytest.raises(FaultPlanError):
        FaultSpec(pattern="a", prob=1.5).validate()
    with pytest.raises(FaultPlanError):
        FaultSpec(pattern="", prob=0.5).validate()
    FaultSpec(pattern="a", prob=0.5).validate()
    FaultSpec(pattern="a", every=3, after=2, max_fires=1).validate()


def test_plan_json_round_trip():
    plan = FaultPlan(seed=42, scope="jobX", specs=(
        FaultSpec(pattern="store.*", prob=0.25, max_fires=3, arg=1.5),
        FaultSpec(pattern="queue.lease.race", every=5, after=2),
    ))
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan


def test_plan_env_round_trip():
    plan = _plan(prob=0.5)
    env = {}
    plan.to_env(env)
    assert PLAN_ENV in env
    assert FaultPlan.from_env(env) == plan
    assert FaultPlan.from_env({}) is None
    assert FaultPlan.from_env({PLAN_ENV: "not json"}) is None


def test_bad_plan_json_raises():
    with pytest.raises(FaultPlanError):
        FaultPlan.from_json({"specs": [{"pattern": "a", "prob": 2.0}]})
    with pytest.raises(FaultPlanError):
        FaultPlan.from_json("nope")


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_every_schedule_is_counter_exact():
    plane = FaultPlane(_plan(every=3, after=1))
    fired = [n for n in range(1, 13) if plane.fire("p.x")]
    # fires at evaluations n > after with (n - after) % every == 0
    assert fired == [4, 7, 10]


def test_prob_schedule_reproducible_across_planes():
    a = FaultPlane(_plan(prob=0.3))
    b = FaultPlane(_plan(prob=0.3))
    decisions_a = [a.fire("p.x") for _ in range(200)]
    decisions_b = [b.fire("p.x") for _ in range(200)]
    assert decisions_a == decisions_b
    assert any(decisions_a) and not all(decisions_a)


def test_streams_are_independent_per_point():
    plan = FaultPlan(seed=1, specs=(
        FaultSpec(pattern="p.*", prob=0.3),))
    lone = FaultPlane(plan)
    lone_x = [lone.fire("p.x") for _ in range(100)]
    mixed = FaultPlane(plan)
    mixed_x = []
    for _ in range(100):
        mixed.fire("p.y")          # interleave another point
        mixed_x.append(mixed.fire("p.x"))
    assert mixed_x == lone_x


def test_scope_changes_the_schedule():
    base = _plan(prob=0.3)
    a = FaultPlane(base.scoped("job-a"))
    b = FaultPlane(base.scoped("job-b"))
    da = [a.fire("p.x") for _ in range(200)]
    db = [b.fire("p.x") for _ in range(200)]
    assert da != db  # astronomically unlikely to collide
    again = FaultPlane(base.scoped("job-a"))
    assert [again.fire("p.x") for _ in range(200)] == da


def test_schedule_replays_live_decisions():
    for kw in ({"prob": 0.4, "max_fires": 5},
               {"every": 4, "after": 3, "max_fires": 2}):
        plane = FaultPlane(_plan(**kw))
        live = [n for n in range(1, 101) if plane.fire("p.x")]
        replay = FaultPlane(_plan(**kw))
        assert replay.schedule("p.x", 100) == [n for n in live]
        # replay is side-effect-free: live firing still matches after
        assert replay.schedule("p.x", 100) == live


def test_max_fires_caps_activations():
    plane = FaultPlane(_plan(every=2, max_fires=3))
    fires = sum(plane.fire("p.x") for _ in range(100))
    assert fires == 3


def test_after_offset_burns_draws_for_alignment():
    """A prob spec with after=N decides evals >N with the same draws
    replay uses — the offset must not desynchronize the stream."""
    plane = FaultPlane(_plan(prob=0.5, after=10))
    live = [n for n in range(1, 61) if plane.fire("p.x")]
    assert live and min(live) > 10
    assert FaultPlane(_plan(prob=0.5, after=10)).schedule("p.x", 60) \
        == live


def test_activations_and_counters_and_callback():
    seen = []
    plane = FaultPlane(_plan(every=2), on_fire=seen.append)
    for _ in range(6):
        plane.fire("p.x")
    plane.fire("p.unmatched-not-in-plan")
    assert [a["eval"] for a in plane.activations] == [2, 4, 6]
    assert seen == plane.activations
    assert plane.counters() == {"p.x": {"evals": 6, "fires": 3}}


def test_preload_fires_caps_lifetime_not_per_plane():
    """A retrying worker preloads recorded fires so max_fires bounds
    the job's lifetime activations across attempts."""
    first = FaultPlane(_plan(every=1, max_fires=1))
    assert first.fire("p.x") is True
    retry = FaultPlane(_plan(every=1, max_fires=1),
                       preload_fires={"p.x": 1})
    assert not any(retry.fire("p.x") for _ in range(10))
    assert retry.counters()["p.x"] == {"evals": 10, "fires": 1}


def test_fire_arg_returns_spec_arg():
    plane = FaultPlane(_plan(every=2, arg=7.5))
    assert plane.fire_arg("p.x") is None     # eval 1
    assert plane.fire_arg("p.x") == 7.5      # eval 2 fires


# ----------------------------------------------------------------------
# module-level installation
# ----------------------------------------------------------------------
def test_fault_without_plane_is_inert():
    assert active_plane() is None
    assert fault("anything.at.all") is False
    assert fault_arg("anything.at.all") is None


def test_active_context_installs_and_restores():
    with active(_plan(every=1)) as plane:
        assert active_plane() is plane
        assert fault("p.x") is True
        assert fault("unmatched.point") is False
    assert active_plane() is None


def test_install_plane_returns_previous():
    first = FaultPlane(_plan(every=1))
    assert install_plane(first) is None
    try:
        second = FaultPlane(_plan(every=1))
        assert install_plane(second) is first
    finally:
        install_plane(None)


def test_catalog_contains_registered_stack_points():
    import repro.io  # noqa: F401 - registration side effects
    import repro.proof.backends  # noqa: F401
    import repro.service.queue  # noqa: F401
    import repro.service.store  # noqa: F401
    import repro.service.worker  # noqa: F401

    points = catalog()
    for expected in (
        "journal.record.crash",
        "io.parse.truncated",
        "proof.backend.timeout", "proof.backend.flaky",
        "proof.backend.slow", "proof.pool.break",
        "queue.lease.race", "queue.submit.torn",
        "store.append.torn", "store.append.error", "store.fsync.error",
        "worker.job.crash", "worker.job.hang",
    ):
        assert expected in points, expected
        assert points[expected]  # has a description


# ----------------------------------------------------------------------
# overhead
# ----------------------------------------------------------------------
def test_disabled_fault_overhead_under_two_percent():
    """Acceptance: the disabled plane costs <2% on fault-point-dense
    paths.  Computed, not raced (the obs-guard idiom): measure the
    per-call cost of a no-plane `fault()` and bound the cost of a
    GDO-scale event volume against a conservative run wall."""
    assert active_plane() is None
    reps = 200_000
    t0 = time.perf_counter()
    for _ in range(reps):
        fault("store.append.torn")
    per_call = (time.perf_counter() - t0) / reps

    # A c17 service job (~0.03s wall, the densest case per event) sees
    # well under 2000 fault-point evaluations: store appends + fsyncs,
    # a handful of queue/journal/backend points per proof.
    events, wall = 2000, 0.03
    overhead = per_call * events
    assert overhead <= 0.02 * wall, (
        f"disabled fault() would cost {1e3 * overhead:.3f}ms of a "
        f"{1e3 * wall:.0f}ms job ({100 * overhead / wall:.2f}% > 2%): "
        f"{1e9 * per_call:.0f}ns per call"
    )
