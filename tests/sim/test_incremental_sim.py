"""Dirty-cone simulator refresh and observability-cache retention
cross-checked against full rebuilds.

``BitSimulator.incremental`` must reproduce, bit for bit, the state a
freshly compiled simulator computes on the same PI words, and
``ObservabilityEngine.refreshed`` must serve exactly the rows a fresh
engine would compute — including for stems whose fanout cone the edit
restructured.
"""

import random

import numpy as np
import pytest

from repro.circuits.registry import build
from repro.library import mcnc_like
from repro.netlist import Branch, dirty_between
from repro.netlist.edit import (
    insert_gate, prune_dangling, replace_input, substitute_stem,
    would_create_cycle,
)
from repro.sim.bitsim import BitSimulator
from repro.sim.observability import ObservabilityEngine
from repro.sim.vectors import random_words

N_WORDS = 4


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


def _random_edit(net, rng):
    """A PI-preserving random structural edit (see timing tests)."""
    order = net.topo_order()
    kind = rng.randrange(3)
    if kind == 0:
        out = rng.choice(order)
        gate = net.gates[out]
        if gate.nin == 0:
            return False
        pin = rng.randrange(gate.nin)
        pool = [
            s for s in list(net.pis) + order
            if s != gate.inputs[pin] and not would_create_cycle(net, out, s)
        ]
        if not pool:
            return False
        replace_input(net, Branch(out, pin), rng.choice(pool))
        return True
    if kind == 1:
        stems = [s for s in order if net.fanout_count(s) > 0]
        if not stems:
            return False
        stem = rng.choice(stems)
        idx = order.index(stem)
        pool = [s for s in list(net.pis) + order[:idx] if s != stem]
        if not pool:
            return False
        substitute_stem(net, stem, rng.choice(pool))
        if stem not in net.pos:
            prune_dangling(net, roots=[stem])
        return True
    pool = list(net.pis) + order
    a, b = rng.choice(pool), rng.choice(pool)
    new = insert_gate(net, rng.choice(["AND", "OR"]), [a, b])
    readers = [
        out for out in net.topo_order()
        if net.gates[out].nin > 0 and out != new
        and not would_create_cycle(net, out, new)
    ]
    if not readers:
        return True
    out = rng.choice(readers)
    replace_input(net, Branch(out, 0), new)
    return True


def _assert_states_equal(state, full_state, net):
    for sig in net.signals():
        assert np.array_equal(state.word(sig), full_state.word(sig)), sig


# ----------------------------------------------------------------------
# simulator carry-over
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,seed", [("Z5xp1", 21), ("9sym", 22),
                                       ("term1", 23)])
def test_incremental_state_matches_full_rebuild(name, seed):
    net = build(name, small=True)
    words = random_words(net.pis, N_WORDS, seed)
    sim = BitSimulator(net)
    state = sim.simulate(words)
    rng = random.Random(seed)
    for _ in range(8):
        before = net.copy()
        if not _random_edit(net, rng):
            continue
        dirty, _removed = dirty_between(before, net)
        sim, state, changed = BitSimulator.incremental(net, sim, state, dirty)
        full_state = BitSimulator(net).simulate(words)
        _assert_states_equal(state, full_state, net)
        # Rows reported unchanged really are carried over verbatim.
        for sig in net.signals():
            if sig not in changed and before.has_signal(sig):
                assert sig not in dirty or np.array_equal(
                    state.word(sig), full_state.word(sig))


def test_incremental_changed_set_is_sound():
    net = build("Z5xp1", small=True)
    words = random_words(net.pis, N_WORDS, 7)
    sim = BitSimulator(net)
    state = sim.simulate(words)
    before = net.copy()
    out = net.topo_order()[-1]
    replace_input(net, Branch(out, 0), net.pis[0])
    dirty, _ = dirty_between(before, net)
    new_sim, new_state, changed = BitSimulator.incremental(
        net, sim, state, dirty)
    for sig in net.signals():
        old_row = state.word(sig) if sig in sim.index_of else None
        if old_row is not None and not np.array_equal(
                old_row, new_state.word(sig)):
            assert sig in changed, sig


# ----------------------------------------------------------------------
# observability-cache retention
# ----------------------------------------------------------------------
def _fill_caches(engine, net, rng, n_branches=20):
    for sig in net.signals():
        engine.stem_observability(sig)
    branches = [
        Branch(out, pin)
        for out in net.topo_order()
        for pin in range(net.gates[out].nin)
    ]
    rng.shuffle(branches)
    for br in branches[:n_branches]:
        engine.branch_observability(br)


@pytest.mark.parametrize("name,seed", [("Z5xp1", 31), ("term1", 32)])
def test_refreshed_engine_matches_fresh_engine(name, seed):
    net = build(name, small=True)
    words = random_words(net.pis, N_WORDS, seed)
    sim = BitSimulator(net)
    state = sim.simulate(words)
    engine = ObservabilityEngine(sim, state)
    rng = random.Random(seed)
    total_reused = 0
    for _ in range(5):
        _fill_caches(engine, net, rng)
        before = net.copy()
        if not _random_edit(net, rng):
            continue
        dirty, removed = dirty_between(before, net)
        sim, state, changed = BitSimulator.incremental(net, sim, state, dirty)
        engine = engine.refreshed(sim, state, dirty | changed | removed)
        total_reused += engine.reused
        fresh = ObservabilityEngine(sim, state)
        for sig in net.signals():
            assert np.array_equal(
                engine.stem_observability(sig),
                fresh.stem_observability(sig),
            ), sig
        for out in net.topo_order():
            for pin in range(net.gates[out].nin):
                br = Branch(out, pin)
                assert np.array_equal(
                    engine.branch_observability(br),
                    fresh.branch_observability(br),
                ), br
    # The retention logic must actually retain something across the run,
    # otherwise this test degenerates into fresh-vs-fresh.
    assert total_reused > 0


def test_refreshed_drops_rows_when_pos_change():
    net = build("Z5xp1", small=True)
    engine = ObservabilityEngine.from_netlist(net, n_words=N_WORDS, seed=1)
    for sig in net.signals():
        engine.stem_observability(sig)
    before = net.copy()
    net.pos = net.pos[:-1]
    net.invalidate()
    dirty, removed = dirty_between(before, net)
    sim = BitSimulator(net)
    state = sim.simulate(
        {pi: engine.state.word(pi) for pi in net.pis})
    refreshed = engine.refreshed(sim, state, dirty | removed)
    assert refreshed.reused == 0
    fresh = ObservabilityEngine(sim, state)
    for sig in net.signals():
        assert np.array_equal(
            refreshed.stem_observability(sig),
            fresh.stem_observability(sig),
        )
