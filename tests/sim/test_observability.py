"""Tests for word-parallel observability (the BPFS engine)."""

import numpy as np

from repro.netlist import Branch, Netlist
from repro.sim import BitSimulator, ObservabilityEngine


def fig1():
    net = Netlist("fig1")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("d", "AND", ["a", "b"])
    net.add_gate("e", "INV", ["c"])
    net.add_gate("f", "OR", ["d", "e"])
    net.set_pos(["f"])
    return net


def engine():
    net = fig1()
    sim = BitSimulator(net)
    return ObservabilityEngine(sim, sim.simulate_exhaustive())


def test_branch_observability_fig1():
    eng = engine()
    # Input a of the AND is observable iff b=1 (AND side) and e=0 (c=1).
    for v in range(8):
        b, c = (v >> 1) & 1, (v >> 2) & 1
        expected = 1 if (b == 1 and c == 1) else 0
        assert eng.observability_bit(Branch("d", 0), v) == expected


def test_stem_observability_fig1():
    eng = engine()
    for v in range(8):
        c = (v >> 2) & 1
        assert eng.observability_bit("d", v) == (1 if c == 1 else 0)
    # e observable iff d = 0
    for v in range(8):
        a, b = v & 1, (v >> 1) & 1
        assert eng.observability_bit("e", v) == (0 if (a and b) else 1)


def test_po_always_observable():
    eng = engine()
    obs = eng.stem_observability("f")
    # A PO stem is observable on every simulated vector (the word may
    # carry more than the 8 distinct vectors; all bits must be set).
    assert np.all(obs == np.uint64(0xFFFFFFFFFFFFFFFF))


def test_pi_observability():
    eng = engine()
    # PI c observable iff d = 0 (through the inverter and OR).
    for v in range(8):
        a, b = v & 1, (v >> 1) & 1
        assert eng.observability_bit("c", v) == (0 if (a and b) else 1)


def test_stem_vs_branch_multifanout():
    # y0 = AND(s, a), y1 = AND(s_n, b) with s_n = INV(s): flipping the
    # stem s affects both cones; flipping one branch affects one.
    net = Netlist("mf")
    for pi in "sab":
        net.add_pi(pi)
    net.add_gate("sn", "INV", ["s"])
    net.add_gate("y0", "AND", ["s", "a"])
    net.add_gate("y1", "AND", ["sn", "b"])
    net.set_pos(["y0", "y1"])
    sim = BitSimulator(net)
    eng = ObservabilityEngine(sim, sim.simulate_exhaustive())
    for v in range(8):
        a, b = (v >> 1) & 1, (v >> 2) & 1
        # branch into y0 observable iff a=1
        assert eng.observability_bit(Branch("y0", 0), v) == a
        # branch into sn (stem fault on that pin) observable iff b=1
        assert eng.observability_bit(Branch("sn", 0), v) == b
        # stem observable iff a or b
        assert eng.observability_bit("s", v) == (1 if (a or b) else 0)


def test_unobservable_signal():
    net = Netlist("dead")
    net.add_pi("a")
    net.add_pi("b")
    net.add_gate("x", "AND", ["a", "b"])
    net.add_gate("y", "OR", ["x", "a"])   # y = a: x is partially dead
    net.add_gate("z", "BUF", ["a"])
    net.set_pos(["z"])  # only z is a PO: x and y unobservable
    sim = BitSimulator(net)
    eng = ObservabilityEngine(sim, sim.simulate_exhaustive())
    assert not eng.stem_observability("x").any()
    assert not eng.stem_observability("y").any()


def test_caching_returns_same_array():
    eng = engine()
    first = eng.stem_observability("d")
    second = eng.stem_observability("d")
    assert first is second
    b1 = eng.branch_observability(Branch("d", 0))
    b2 = eng.branch_observability(Branch("d", 0))
    assert b1 is b2


def test_from_netlist_constructor():
    eng = ObservabilityEngine.from_netlist(fig1(), n_words=4, seed=9)
    assert eng.state.n_words == 4
