"""Tests for the bit-parallel simulator."""


import numpy as np
import pytest

from repro.netlist import Netlist
from repro.sim import (
    BitSimulator, exhaustive_words, random_words, truth_table_of,
    vectors_to_words, word_mask_for,
)


def fig1():
    net = Netlist("fig1")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("d", "AND", ["a", "b"])
    net.add_gate("e", "INV", ["c"])
    net.add_gate("f", "OR", ["d", "e"])
    net.set_pos(["f"])
    return net


def test_exhaustive_words_patterns():
    words = exhaustive_words(["a", "b", "c"])
    # 8 vectors fit one word; PI i value at vector v is bit i of v.
    for v in range(8):
        for i, pi in enumerate(["a", "b", "c"]):
            bit = int((words[pi][0] >> np.uint64(v)) & np.uint64(1))
            assert bit == (v >> i) & 1


def test_exhaustive_words_many_inputs():
    pis = [f"x{k}" for k in range(8)]
    words = exhaustive_words(pis)
    assert len(words["x0"]) == 256 // 64
    # cross-check vector 200
    v = 200
    for i, pi in enumerate(pis):
        w, b = divmod(v, 64)
        assert int((words[pi][w] >> np.uint64(b)) & np.uint64(1)) == (v >> i) & 1


def test_exhaustive_limit():
    with pytest.raises(ValueError):
        exhaustive_words([f"x{k}" for k in range(23)])


def test_truth_table_fig1():
    table = truth_table_of(fig1())
    for v in range(8):
        a, b, c = v & 1, (v >> 1) & 1, (v >> 2) & 1
        assert table[v] == ((a & b) | (1 - c))


def test_simulate_explicit_vectors():
    net = fig1()
    sim = BitSimulator(net)
    state = sim.simulate(vectors_to_words(
        net.pis, [{"a": 1, "b": 1, "c": 1}, {"a": 0, "b": 0, "c": 0}]
    ))
    assert state.bit("f", 0) == 1
    assert state.bit("f", 1) == 1
    assert state.bit("d", 0) == 1
    assert state.bit("d", 1) == 0


def test_random_words_deterministic():
    w1 = random_words(["a", "b"], 4, seed=42)
    w2 = random_words(["a", "b"], 4, seed=42)
    assert all(np.array_equal(w1[k], w2[k]) for k in w1)
    w3 = random_words(["a", "b"], 4, seed=43)
    assert any(not np.array_equal(w1[k], w3[k]) for k in w1)


def test_word_mask():
    assert word_mask_for(64)[0] == np.uint64(0xFFFFFFFFFFFFFFFF)
    assert word_mask_for(3)[0] == np.uint64(0b111)
    assert len(word_mask_for(65)) == 2
    assert word_mask_for(65)[1] == np.uint64(1)


def test_resimulate_cone_stem():
    net = fig1()
    sim = BitSimulator(net)
    state = sim.simulate_exhaustive()
    base_f = state.word("f").copy()
    overrides = sim.resimulate_cone(state, "d", ~state.word("d"))
    f_idx = sim.index_of["f"]
    # base state untouched
    assert np.array_equal(state.word("f"), base_f)
    # flipped d changes f on vectors where e = 0 (c = 1)
    new_f = overrides[f_idx]
    diff = new_f ^ base_f
    for v in range(8):
        c = (v >> 2) & 1
        expected = 1 if c == 1 else 0
        assert int((diff[0] >> np.uint64(v)) & np.uint64(1)) == expected


def test_resimulate_cone_branch_no_change():
    # A branch flip that does not change the sink output yields {}.
    net = Netlist("absorb")
    net.add_pi("a")
    net.add_pi("b")
    net.add_gate("z", "AND", ["a", "b"])
    net.set_pos(["z"])
    sim = BitSimulator(net)
    # Drive b = 0 everywhere: flipping pin 'a' never changes z.
    state = sim.simulate(vectors_to_words(net.pis, [{"a": 1, "b": 0}]))
    sink = (sim.index_of["z"], 0)
    overrides = sim.resimulate_cone(state, "a", ~state.word("a"),
                                    sink_filter=sink)
    assert overrides == {}


def test_constants_simulate():
    net = Netlist("k")
    net.add_pi("a")
    net.add_gate("c1", "CONST1", [])
    net.add_gate("y", "AND", ["a", "c1"])
    net.set_pos(["y"])
    assert truth_table_of(net) == [0, 1]


def test_complex_cells_simulate():
    net = Netlist("cx")
    for pi in "abcd":
        net.add_pi(pi)
    net.add_gate("y", "AOI22", ["a", "b", "c", "d"])
    net.set_pos(["y"])
    table = truth_table_of(net)
    for v in range(16):
        a, b, c, d = (v & 1), (v >> 1) & 1, (v >> 2) & 1, (v >> 3) & 1
        assert table[v] == 1 - ((a & b) | (c & d))
