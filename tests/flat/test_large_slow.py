"""Slow large-circuit regression for the flat kernels.

The registry suite tops out near 2k gates; this generates a >10k-gate
control netlist — a size class the default test run never touches — and
asserts the flat path (a) stays bitwise-differential against the dict
engine on sim + STA, and (b) commits the identical modification
sequence through a truncated GDO budget.

Gated behind ``-m slow`` (excluded by the default addopts); run with::

    PYTHONPATH=src python -m pytest tests/flat/test_large_slow.py \
        -m slow --override-ini "addopts=-q"
"""

import numpy as np
import pytest

from repro.circuits.registry import random_control
from repro.flat.batchsim import flat_simulate
from repro.flat.flatsta import FlatTiming
from repro.flat.view import FlatView
from repro.library import mcnc_like
from repro.netlist.edit import structural_signature
from repro.sim import BitSimulator
from repro.sim.vectors import random_words
from repro.timing import Sta

pytestmark = pytest.mark.slow

N_GATES = 10_500


@pytest.fixture(scope="module")
def big():
    net = random_control(n_pi=96, n_gates=N_GATES, n_po=48, seed=13,
                         locality=64, name="big13")
    lib = mcnc_like()
    lib.rebind(net)
    assert net.num_gates > 10_000
    return net, lib


def test_flat_kernels_differential_at_scale(big):
    net, lib = big
    sim = BitSimulator(net)
    words = random_words(net.pis, 8, 77)
    state = sim.simulate(dict(words))
    view = FlatView.build(net, library=lib)
    values = flat_simulate(view, words)
    for sig, idx in view.index_of.items():
        assert np.array_equal(values[idx], state.word(sig)), sig
    sta = Sta(net, lib)
    ft = FlatTiming(view)
    assert ft.delay == sta.delay
    assert ft.arrival_dict() == sta.arrival
    assert ft.required_dict() == sta.required


def test_flat_gdo_matches_dict_on_truncated_budget(big):
    from repro.opt import GdoConfig, gdo_optimize

    net, lib = big

    def run(flat):
        cfg = GdoConfig(
            n_words=8, flat=flat, proof="none", verify_final=False,
            max_rounds=1, max_passes_per_phase=2,
            max_targets_per_pass=16, max_trials_per_pass=24,
            area_phase=False,
        )
        return gdo_optimize(net.copy(), lib, cfg)

    flat_run, dict_run = run(True), run(False)
    assert [(m.kind, m.description) for m in flat_run.stats.history] == \
           [(m.kind, m.description) for m in dict_run.stats.history]
    assert flat_run.stats.delay_after == dict_run.stats.delay_after
    assert structural_signature(flat_run.net) == \
        structural_signature(dict_run.net)
    assert flat_run.stats.engine.flat_hits > 0
    assert dict_run.stats.engine.flat_hits == 0
