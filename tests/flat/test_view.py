"""FlatView construction invariants.

The view is the foundation the vectorized kernels stand on: these tests
pin its index convention (shared with :class:`BitSimulator`), level
structure, schedule coverage, CSR fanout order, staleness tracking, and
the error paths that trigger dict-engine fallback.
"""

import numpy as np
import pytest

from repro.circuits.registry import build, random_control
from repro.flat.view import CODE_NAMES, FUNC_CODES, FlatView, FlatViewError
from repro.library import mcnc_like
from repro.netlist.edit import structural_signature
from repro.netlist.gatefunc import GateFunc
from repro.netlist.netlist import Netlist
from repro.sim import BitSimulator


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


def _nets():
    yield "C432", build("C432", small=True)
    yield "C880", build("C880", small=True)
    yield "ctrl", random_control(16, 120, 6, seed=11)


@pytest.mark.parametrize("name,net", list(_nets()))
def test_index_convention_matches_bitsim(name, net):
    view = FlatView.build(net)
    sim = BitSimulator(net)
    assert view.names == list(sim.index_of)
    assert all(view.index_of[s] == i for i, s in enumerate(view.names))
    assert view.names[:view.n_pis] == list(net.pis)
    assert view.gate_names == net.topo_order()


@pytest.mark.parametrize("name,net", list(_nets()))
def test_level_monotonicity(name, net):
    view = FlatView.build(net)
    level = view.level
    assert (level[:view.n_pis] == 0).all()
    for k in range(view.n_gates):
        out = view.n_pis + k
        a = int(view.arity[k])
        if a == 0:
            assert level[out] == 1
            continue
        fan_levels = level[view.fanin[k, :a]]
        assert level[out] == fan_levels.max() + 1
        assert (fan_levels < level[out]).all()
    assert view.n_levels == int(level.max())


@pytest.mark.parametrize("name,net", list(_nets()))
def test_fanin_table_roundtrips_structural_signature(name, net):
    """Reconstructing (output, func, cell, inputs) rows from the arrays
    must reproduce the netlist's structural signature exactly."""
    view = FlatView.build(net)
    rebuilt_gates = tuple(sorted(
        (
            view.names[view.n_pis + k],
            CODE_NAMES[int(view.code[k])],
            view.cells[k],
            tuple(view.names[int(view.fanin[k, pin])]
                  for pin in range(int(view.arity[k]))),
        )
        for k in range(view.n_gates)
    ))
    rebuilt = (
        tuple(view.names[:view.n_pis]),
        tuple(view.names[i] for i in view.po_rows),
        rebuilt_gates,
    )
    assert rebuilt == structural_signature(net)


@pytest.mark.parametrize("name,net", list(_nets()))
def test_schedule_covers_every_gate_once(name, net):
    view = FlatView.build(net)
    seen = []
    for lvl, groups in enumerate(view.schedule):
        for code, a, rows in groups:
            assert (view.level[rows + view.n_pis] == lvl).all()
            assert (view.code[rows] == code).all()
            assert (view.arity[rows] == a).all()
            assert (np.diff(rows) > 0).all()  # ascending topo positions
            seen.extend(rows.tolist())
    assert sorted(seen) == list(range(view.n_gates))


@pytest.mark.parametrize("name,net", list(_nets()))
def test_csr_fanout_matches_fanout_map(name, net):
    view = FlatView.build(net)
    fan = net.fanout_map()
    for sig, idx in view.index_of.items():
        lo, hi = view.fo_ptr[idx], view.fo_ptr[idx + 1]
        entries = [
            (view.names[int(g)], int(p))
            for g, p in zip(view.fo_gate[lo:hi], view.fo_pin[lo:hi])
        ]
        expected = [(b.gate, b.pin) for b in fan.get(sig, [])]
        assert entries == expected, sig


def test_po_rows_keep_multiplicity(lib):
    net = build("C432", small=True)
    view = FlatView.build(net)
    assert [view.names[i] for i in view.po_rows] == list(net.pos)
    for sig, idx in view.index_of.items():
        assert view.po_count[idx] == net.pos.count(sig)


def test_staleness_tracks_struct_version():
    net = build("C880", small=True)
    view = FlatView.build(net)
    assert view.is_current() and view.is_current(net)
    net.add_gate(net.fresh_name("t"), "INV", [net.pis[0]])
    net.invalidate()
    assert not view.is_current()
    assert not FlatView.build(net) is view
    assert FlatView.build(net).is_current(net)
    # A view never describes a different Netlist object, even a copy.
    assert not view.is_current(net.copy())


def test_library_columns_match_genlib(lib):
    net = build("C432", small=True)
    lib.rebind(net)
    view = FlatView.build(net, library=lib)
    for k, sig in enumerate(view.gate_names):
        gate = net.gates[sig]
        for pin in range(gate.nin):
            t = lib.gate_pin_timing(gate, pin)
            assert view.pin_block[k, pin] == t.block
            assert view.pin_drive[k, pin] == t.drive
            assert view.pin_load[k, pin] == lib.gate_input_load(gate, pin)
    bare = FlatView.build(net)
    assert bare.pin_block is None


def test_non_singleton_func_raises():
    net = build("C432", small=True)
    sig = net.topo_order()[0]
    gate = net.gates[sig]
    rogue = GateFunc(gate.func.name, gate.func.arity)
    original = gate.func
    gate.func = rogue
    try:
        with pytest.raises(FlatViewError):
            FlatView.build(net)
    finally:
        gate.func = original


def test_undriven_input_raises():
    net = Netlist("dangling")
    net.add_pi("a")
    net.add_gate("g", "INV", ["ghost"])
    with pytest.raises(FlatViewError):
        FlatView.build(net)


def test_gate_row_maps_into_columns():
    net = build("C880", small=True)
    view = FlatView.build(net)
    for sig in net.topo_order():
        k = view.gate_row(sig)
        assert view.names[view.n_pis + k] == sig
        assert CODE_NAMES[int(view.code[k])] == net.gates[sig].func.name


def test_func_codes_cover_all_singletons():
    assert set(CODE_NAMES) == set(FUNC_CODES)
    assert len(CODE_NAMES) == len(FUNC_CODES)
