"""Differential harness: flat kernels ≡ dict engine, bitwise.

The flat kernels replace the numerically hottest code in the repo, so
this suite is the load-bearing safety net: for seeded random netlists
and registry circuits — including after every step of a random edit
script (apply → check → undo → check) — the flat simulator's word
matrix, the flat STA's arrival/required/slack/load annotation, and the
batched observability rows must equal the dict engine's output *bit for
bit* (``==`` on floats, ``array_equal`` on words; no tolerances).
"""

import random

import numpy as np
import pytest

from repro.circuits.registry import build, random_control
from repro.clauses.pvcc import Candidate
from repro.flat.batchsim import (
    FlatObservabilityEngine, batch_observability, flat_simulate,
)
from repro.flat.flatsta import FlatTiming
from repro.flat.view import FlatView
from repro.library import mcnc_like
from repro.netlist.edit import prune_dangling, structural_signature
from repro.netlist.netlist import Branch
from repro.sim import BitSimulator, ObservabilityEngine
from repro.sim.vectors import random_words
from repro.timing import Sta
from repro.transform.substitution import (
    TransformError, apply_candidate_inplace,
)

N_WORDS = 8


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


def _pick_refs(net, rnd, n_stems=12, n_branches=8):
    """Deterministic mixed stem/branch/PI fault sites."""
    stems = sorted(net.gates)
    refs = [rnd.choice(stems) for _ in range(min(n_stems, len(stems)))]
    refs.extend(rnd.sample(list(net.pis), min(3, len(net.pis))))
    fan = net.fanout_map()
    multi = sorted(s for s, br in fan.items() if len(br) >= 2)
    for _ in range(n_branches):
        if not multi:
            break
        stem = rnd.choice(multi)
        refs.append(rnd.choice(fan[stem]))
    return refs


def assert_flat_matches_dict(net, lib, seed):
    """The one differential check: sim words, STA annotation, and
    observability rows of the flat kernels vs. the dict engine."""
    rnd = random.Random(seed)
    sim = BitSimulator(net)
    words = random_words(net.pis, N_WORDS, seed)
    state = sim.simulate(dict(words))
    view = FlatView.build(net, library=lib)
    assert view.names == list(sim.index_of)

    # --- simulation ---
    values = flat_simulate(view, words)
    assert values.shape == (view.n_signals, N_WORDS)
    for sig, idx in view.index_of.items():
        assert np.array_equal(values[idx], state.word(sig)), sig

    # --- timing ---
    sta = Sta(net, lib)
    ft = FlatTiming(view)
    assert ft.delay == sta.delay
    assert ft.load_dict() == sta.load
    assert ft.arrival_dict() == sta.arrival
    assert ft.required_dict() == sta.required
    assert ft.slack_dict() == sta.slack

    # --- observability ---
    eng = ObservabilityEngine(sim, state)
    refs = _pick_refs(net, rnd)
    rows = batch_observability(view, values, refs)
    assert len(rows) == len(refs)
    for ref, row in zip(refs, rows):
        expect = eng.observability(ref)
        assert np.array_equal(row, expect), ref


def _edit_script(net, rnd, limit=60):
    """Structurally plausible OS2/IS2 candidates (legality is decided by
    the transform; illegal ones are skipped like the optimizer does)."""
    sigs = sorted(net.gates)
    fan = net.fanout_map()
    multi = sorted(s for s, br in fan.items() if len(br) >= 2)
    cands = []
    for _ in range(limit):
        if multi and rnd.random() < 0.3:
            stem = rnd.choice(multi)
            cands.append(Candidate(target=rnd.choice(fan[stem]),
                                   kind="IS2",
                                   sources=(rnd.choice(sigs),)))
        else:
            tgt, src = rnd.choice(sigs), rnd.choice(sigs)
            if tgt == src:
                continue
            cands.append(Candidate(target=tgt, kind="OS2", sources=(src,),
                                   inverted=rnd.random() < 0.5))
    return cands


@pytest.mark.parametrize("name,seed", [
    ("C432", 101), ("C880", 202), ("9sym", 303),
])
def test_differential_through_registry_edit_scripts(lib, name, seed):
    net = build(name, small=True)
    prune_dangling(net)
    lib.rebind(net)
    baseline = structural_signature(net)
    assert_flat_matches_dict(net, lib, seed)

    rnd = random.Random(seed)
    applied = 0
    for cand in _edit_script(net, rnd):
        try:
            edit = apply_candidate_inplace(net, cand, lib)
        except TransformError:
            continue
        applied += 1
        # After the edit: the flat kernels see the mutated structure.
        assert_flat_matches_dict(net, lib, seed + applied)
        edit.undo(net)
        assert structural_signature(net) == baseline
        # After the undo: and the restored one.
        assert_flat_matches_dict(net, lib, seed)
        if applied >= 8:
            break
    assert applied >= 5, "edit script too short; differential is vacuous"


def test_differential_covers_every_gate_function(lib):
    """A netlist instantiating every singleton function (n-ary ones at
    arities 2..4) pins every ``_eval_group`` kernel branch against the
    dict engine — registry circuits don't reach AOI/MUX/MAJ/consts."""
    from repro.netlist.gatefunc import FUNC_BY_NAME
    from repro.netlist.netlist import Netlist

    net = Netlist("allfuncs")
    pis = [net.add_pi(p) for p in ("a", "b", "c", "d")]
    for name, func in sorted(FUNC_BY_NAME.items()):
        if func.arity is None:
            for n in (2, 3, 4):
                net.add_gate(f"g_{name}_{n}", name, pis[:n])
        else:
            net.add_gate(f"g_{name}", name, pis[:func.arity])
    # Second rank so faults on the first have somewhere to propagate.
    first = sorted(net.gates)
    for i in range(0, len(first) - 1, 2):
        net.add_gate(f"m_{i}", "XOR", [first[i], first[i + 1]])
    net.set_pos(sorted(net.gates))
    net.invalidate()
    lib.rebind(net)
    assert_flat_matches_dict(net, lib, 42)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_differential_on_random_netlists(lib, seed):
    net = random_control(n_pi=20, n_gates=140, n_po=8, seed=seed)
    lib.rebind(net)
    assert_flat_matches_dict(net, lib, 1000 + seed)


def test_differential_survives_committed_edits(lib):
    """Edits left applied (no undo) — the rebuilt view must track the
    evolving structure version by version."""
    net = build("C880", small=True)
    prune_dangling(net)
    lib.rebind(net)
    rnd = random.Random(7)
    committed = 0
    for cand in _edit_script(net, rnd):
        try:
            apply_candidate_inplace(net, cand, lib)
        except TransformError:
            continue
        committed += 1
        assert_flat_matches_dict(net, lib, 2000 + committed)
        if committed >= 4:
            break
    assert committed >= 3


def test_update_input_arrivals_matches_fresh_compute(lib):
    net = build("C432", small=True)
    lib.rebind(net)
    view = FlatView.build(net, library=lib)
    ft = FlatTiming(view)
    changes = {net.pis[0]: 2.5, net.pis[3]: 0.75, net.pis[5]: 0.0}
    touched = ft.update_input_arrivals(changes)
    fresh = FlatTiming(view, input_arrival=changes)
    assert touched > 0
    assert ft.delay == fresh.delay
    assert np.array_equal(ft.arrival, fresh.arrival)
    assert np.array_equal(ft.required, fresh.required)
    assert np.array_equal(ft.slack, fresh.slack)
    # And against the dict engine under the same boundary conditions.
    sta = Sta(net, lib, input_arrival=changes)
    assert ft.arrival_dict() == sta.arrival
    assert ft.delay == sta.delay


def test_flat_observability_engine_prefetch_matches_lazy(lib):
    net = build("C880", small=True)
    lib.rebind(net)
    sim = BitSimulator(net)
    state = sim.simulate_random(n_words=N_WORDS, seed=5)
    refs = _pick_refs(net, random.Random(5))
    flat_eng = FlatObservabilityEngine(sim, state)
    flat_eng.prefetch(refs)
    assert flat_eng.flat_hits == len(set(
        (r.gate, r.pin) if isinstance(r, Branch) else r for r in refs))
    assert flat_eng.flat_fallbacks == 0
    lazy_eng = ObservabilityEngine(sim, state)
    for ref in refs:
        assert np.array_equal(flat_eng.observability(ref),
                              lazy_eng.observability(ref)), ref
    # Prefetched rows count as computed: counters comparable flat on/off.
    assert flat_eng.computed == lazy_eng.computed


def test_flat_observability_engine_falls_back_on_stale_sim(lib):
    """A sim snapshot predating a structural edit cannot be served by a
    fresh view; prefetch must decline (counted) and leave the lazy dict
    path to answer."""
    net = build("C432", small=True)
    lib.rebind(net)
    sim = BitSimulator(net)
    state = sim.simulate_random(n_words=N_WORDS, seed=9)
    eng = FlatObservabilityEngine(sim, state)
    net.add_gate(net.fresh_name("extra"), "INV", [net.pis[0]])
    net.invalidate()
    targets = sorted(sim.net.gates)[:4]
    eng.prefetch(targets)
    assert eng.flat_fallbacks == 1
    assert eng.flat_hits == 0
