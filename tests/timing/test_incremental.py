"""Property-based equivalence of IncrementalSta against from-scratch Sta.

Each test drives a seeded random edit sequence over registry circuits
through :func:`repro.netlist.edit.dirty_between` +
:meth:`IncrementalSta.refresh` and asserts after *every* step that the
maintained annotation (load, arrival, required, slack, delay, NCP) is
exactly the one a fresh :class:`Sta` computes.  Exact equality is
intentional: the incremental engine re-runs the same float expressions
on the same operands, which is what makes incremental and scratch GDO
runs produce identical modification sequences.
"""

import random

import pytest

from repro.circuits.registry import build
from repro.library import mcnc_like
from repro.netlist import Branch, dirty_between
from repro.netlist.edit import (
    insert_gate, prune_dangling, replace_input, set_branch_constant,
    substitute_stem, would_create_cycle,
)
from repro.timing import IncrementalSta, Sta


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


# ----------------------------------------------------------------------
# random edit generator
# ----------------------------------------------------------------------
def _apply_random_edit(net, rng):
    """One random structural edit on ``net``; returns False if the drawn
    edit was inapplicable (caller simply draws again)."""
    order = net.topo_order()
    if not order:
        return False
    kind = rng.randrange(4)
    if kind == 0:
        # Reconnect one gate input pin to another signal.
        out = rng.choice(order)
        gate = net.gates[out]
        if gate.nin == 0:
            return False
        pin = rng.randrange(gate.nin)
        pool = [
            s for s in list(net.pis) + order
            if s != gate.inputs[pin] and not would_create_cycle(net, out, s)
        ]
        if not pool:
            return False
        replace_input(net, Branch(out, pin), rng.choice(pool))
        return True
    if kind == 1:
        # Redirect every reader of a stem to an earlier signal, then
        # reclaim the dangling cone (exercises the removed-set path).
        stems = [s for s in order if net.fanout_count(s) > 0]
        if not stems:
            return False
        stem = rng.choice(stems)
        idx = order.index(stem)
        pool = [s for s in list(net.pis) + order[:idx] if s != stem]
        if not pool:
            return False
        substitute_stem(net, stem, rng.choice(pool))
        if stem not in net.pos:
            prune_dangling(net, roots=[stem])
        return True
    if kind == 2:
        # Insert a fresh gate over two existing signals and wire one
        # downstream reader onto it.
        pool = list(net.pis) + order
        a, b = rng.choice(pool), rng.choice(pool)
        new = insert_gate(net, rng.choice(["AND", "OR", "XOR"]), [a, b])
        readers = [
            out for out in net.topo_order()
            if net.gates[out].nin > 0 and out != new
            and not would_create_cycle(net, out, new)
        ]
        if readers:
            out = rng.choice(readers)
            pin = rng.randrange(net.gates[out].nin)
            replace_input(net, Branch(out, pin), new)
        return True
    # kind == 3: tie one gate input pin to a constant.
    out = rng.choice(order)
    gate = net.gates[out]
    if gate.nin == 0:
        return False
    pin = rng.randrange(gate.nin)
    victim = gate.inputs[pin]
    set_branch_constant(net, Branch(out, pin), rng.randrange(2))
    if victim in net.gates and victim not in net.pos:
        prune_dangling(net, roots=[victim])
    return True


def _assert_same_annotation(inc, net, lib):
    fresh = Sta(net, lib, po_load=inc.po_load, eps=inc.eps)
    assert inc.delay == fresh.delay
    assert inc.load == fresh.load
    assert inc.arrival == fresh.arrival
    assert inc.required == fresh.required
    assert inc.slack == fresh.slack
    for sig in net.signals():
        assert inc.ncp(sig) == fresh.ncp(sig), sig
    for out in net.topo_order():
        for pin in range(net.gates[out].nin):
            br = Branch(out, pin)
            assert inc.ncp_edge(br) == fresh.ncp_edge(br), br


# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,seed", [
    ("Z5xp1", 1), ("9sym", 2), ("term1", 3), ("C432", 4),
])
def test_refresh_matches_scratch_over_edit_sequence(lib, name, seed):
    net = build(name, small=True)
    lib.rebind(net)
    rng = random.Random(seed)
    inc = IncrementalSta(net, lib)
    _assert_same_annotation(inc, net, lib)
    steps = 0
    while steps < 12:
        before = net.copy()
        if not _apply_random_edit(net, rng):
            continue
        steps += 1
        dirty, removed = dirty_between(before, net)
        inc.refresh(dirty, removed)
        _assert_same_annotation(inc, net, lib)
    assert inc.incremental_updates + inc.scratch_updates > 1


def test_refresh_none_falls_back_to_scratch(lib):
    net = build("Z5xp1", small=True)
    lib.rebind(net)
    inc = IncrementalSta(net, lib)
    scratch_before = inc.scratch_updates
    out = net.topo_order()[-1]
    gate = net.gates[out]
    if gate.nin:
        replace_input(net, Branch(out, 0), net.pis[0])
    inc.refresh(None)
    assert inc.scratch_updates == scratch_before + 1
    _assert_same_annotation(inc, net, lib)


def test_refresh_large_dirty_set_falls_back(lib):
    net = build("9sym", small=True)
    lib.rebind(net)
    inc = IncrementalSta(net, lib)
    scratch_before = inc.scratch_updates
    inc.refresh(set(net.signals()))  # > scratch_fraction of the gates
    assert inc.scratch_updates == scratch_before + 1
    assert inc.incremental_updates == 0
    _assert_same_annotation(inc, net, lib)


def test_refresh_empty_dirty_is_noop(lib):
    net = build("Z5xp1", small=True)
    lib.rebind(net)
    inc = IncrementalSta(net, lib)
    counts = (inc.scratch_updates, inc.incremental_updates)
    inc.refresh(set())
    assert (inc.scratch_updates, inc.incremental_updates) == counts
    _assert_same_annotation(inc, net, lib)


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_fork_annotates_trial_and_preserves_base(lib, seed):
    """fork() must annotate the edited copy exactly while leaving the
    base annotation untouched — GDO evaluates many trials per adoption."""
    net = build("term1", small=True)
    lib.rebind(net)
    rng = random.Random(seed)
    inc = IncrementalSta(net, lib)
    for _ in range(6):
        trial = net.copy()
        if not _apply_random_edit(trial, rng):
            continue
        dirty, removed = dirty_between(net, trial)
        fork = inc.fork(trial, dirty, removed)
        _assert_same_annotation(fork, trial, lib)
        _assert_same_annotation(inc, net, lib)  # base unaffected


def test_counters_track_work(lib):
    net = build("Z5xp1", small=True)
    lib.rebind(net)
    inc = IncrementalSta(net, lib)
    assert inc.scratch_updates == 1
    out = net.topo_order()[-1]
    before = net.copy()
    replace_input(net, Branch(out, 0), net.pis[0])
    dirty, removed = dirty_between(before, net)
    inc.refresh(dirty, removed)
    assert inc.incremental_updates == 1
    assert inc.signals_touched > 0
