"""Tests for static timing analysis."""

import pytest

from repro.library import mcnc_like, unit_delay_library
from repro.netlist import Branch, Netlist
from repro.timing import Sta, enumerate_critical_paths, longest_path, path_delay


def chain_net():
    """PI -> inv chain of length 4 -> PO, plus a short side path."""
    net = Netlist("chain")
    net.add_pi("a")
    net.add_pi("b")
    prev = "a"
    for k in range(4):
        prev = net.add_gate(f"n{k}", "INV", [prev])
    net.add_gate("y", "AND", [prev, "b"])
    net.set_pos(["y"])
    return net


def test_unit_delay_arrival_levels():
    net = chain_net()
    lib = unit_delay_library()
    lib.rebind(net)
    sta = Sta(net, lib)
    assert sta.arrival["a"] == 0.0
    assert sta.arrival["n0"] == pytest.approx(1.0)
    assert sta.arrival["n3"] == pytest.approx(4.0)
    assert sta.arrival["y"] == pytest.approx(5.0)
    assert sta.delay == pytest.approx(5.0)


def test_slack_and_critical():
    net = chain_net()
    lib = unit_delay_library()
    lib.rebind(net)
    sta = Sta(net, lib)
    # the inverter chain and y are critical; b has slack 4
    assert sta.slack["y"] == pytest.approx(0.0)
    assert sta.slack["n2"] == pytest.approx(0.0)
    assert sta.slack["b"] == pytest.approx(4.0)
    assert sta.is_critical("n0") and not sta.is_critical("b")
    crit = sta.critical_gates()
    assert "y" in crit and "n1" in crit


def test_critical_edges():
    net = chain_net()
    lib = unit_delay_library()
    lib.rebind(net)
    sta = Sta(net, lib)
    assert sta.is_critical_edge(Branch("y", 0))       # from n3
    assert not sta.is_critical_edge(Branch("y", 1))   # from b


def test_ncp_counts():
    # Two parallel critical paths reconverging.
    net = Netlist("par")
    net.add_pi("a")
    net.add_gate("p", "INV", ["a"])
    net.add_gate("q", "INV", ["a"])
    net.add_gate("y", "AND", ["p", "q"])
    net.set_pos(["y"])
    lib = unit_delay_library()
    lib.rebind(net)
    sta = Sta(net, lib)
    assert sta.ncp("y") == 2
    assert sta.ncp("p") == 1
    assert sta.ncp("a") == 2
    assert sta.ncp_of(Branch("y", 0)) == 1
    assert sta.ncp_edge(Branch("y", 1)) == 1


def test_load_dependent_delay():
    # The same gate driving more sinks gets slower under mcnc_like.
    lib = mcnc_like()
    light = Netlist("light")
    light.add_pi("a")
    light.add_pi("b")
    light.add_gate("x", "AND", ["a", "b"])
    light.add_gate("y", "INV", ["x"])
    light.set_pos(["y"])
    lib.rebind(light)
    heavy = light.copy("heavy")
    for k in range(4):
        heavy.add_gate(f"s{k}", "INV", ["x"])
        heavy.add_po(f"s{k}")
    lib.rebind(heavy)
    arr_light = Sta(light, lib).arrival["x"]
    arr_heavy = Sta(heavy, lib).arrival["x"]
    assert arr_heavy > arr_light


def test_input_arrival_offsets():
    net = chain_net()
    lib = unit_delay_library()
    lib.rebind(net)
    sta = Sta(net, lib, input_arrival={"b": 10.0})
    assert sta.delay == pytest.approx(11.0)
    assert sta.is_critical("b")


def test_longest_path_extraction():
    net = chain_net()
    lib = unit_delay_library()
    lib.rebind(net)
    sta = Sta(net, lib)
    path = longest_path(sta)
    assert path == ["a", "n0", "n1", "n2", "n3", "y"]
    assert path_delay(sta, path) == pytest.approx(sta.delay)


def test_enumerate_critical_paths():
    net = Netlist("par")
    net.add_pi("a")
    net.add_gate("p", "INV", ["a"])
    net.add_gate("q", "INV", ["a"])
    net.add_gate("y", "AND", ["p", "q"])
    net.set_pos(["y"])
    lib = unit_delay_library()
    lib.rebind(net)
    sta = Sta(net, lib)
    paths = enumerate_critical_paths(sta)
    assert len(paths) == 2
    assert ["a", "p", "y"] in paths and ["a", "q", "y"] in paths
    assert enumerate_critical_paths(sta, limit=1) == [["a", "p", "y"]]


def test_report_smoke():
    net = chain_net()
    lib = unit_delay_library()
    lib.rebind(net)
    text = Sta(net, lib).report()
    assert "delay" in text and "critical" in text
