"""Functional tests for the benchmark circuit generators."""

import random

import pytest

from repro.circuits import (
    SMALL_SUITE, SUITE, TABLE2_NAMES, alu181, array_multiplier, build,
    c1355_like, c880_like, carry_select_adder, comparator, majority, nsym,
    nsym9, parity_tree, priority_controller, ripple_carry_adder,
    sec_corrector, squarer, suite_names, z5xp1_like,
)
from repro.circuits.ecc import _parity_positions
from repro.sim import BitSimulator, vectors_to_words
from repro.verify import check_equivalence


def eval_vec(net, assign):
    state = BitSimulator(net).simulate(vectors_to_words(net.pis, [assign]))
    return [state.bit(po, 0) for po in net.pos]


def to_int(bits):
    return sum(b << k for k, b in enumerate(bits))


def vec_assign(prefix, value, width):
    return {f"{prefix}{k}": (value >> k) & 1 for k in range(width)}


@pytest.mark.parametrize("width", [2, 5, 8])
def test_ripple_carry_adder(width):
    net = ripple_carry_adder(width)
    rnd = random.Random(width)
    for _ in range(20):
        a, b = rnd.getrandbits(width), rnd.getrandbits(width)
        c = rnd.getrandbits(1)
        assign = {**vec_assign("a", a, width), **vec_assign("b", b, width),
                  "cin": c}
        assert to_int(eval_vec(net, assign)) == a + b + c


def test_carry_select_matches_ripple():
    rca = ripple_carry_adder(9)
    csa = carry_select_adder(9, block=3)
    assert check_equivalence(rca, csa)


@pytest.mark.parametrize("style", ["nor", "csa"])
def test_multiplier_exhaustive_4x4(style):
    net = array_multiplier(4, style=style)
    for a in range(16):
        for b in range(16):
            assign = {**vec_assign("a", a, 4), **vec_assign("b", b, 4)}
            assert to_int(eval_vec(net, assign)) == a * b


def test_multiplier_styles_equivalent():
    assert check_equivalence(array_multiplier(4, style="nor"),
                             array_multiplier(4, style="csa"))


def test_multiplier_bad_style():
    with pytest.raises(ValueError):
        array_multiplier(4, style="wallace")


def test_squarer():
    net = squarer(4)
    for x in range(16):
        assert to_int(eval_vec(net, vec_assign("x", x, 4))) == x * x


def test_comparator():
    net = comparator(5)
    rnd = random.Random(1)
    for _ in range(40):
        a, b = rnd.getrandbits(5), rnd.getrandbits(5)
        assign = {**vec_assign("a", a, 5), **vec_assign("b", b, 5)}
        lt, eq, gt = eval_vec(net, assign)
        assert (lt, eq, gt) == (int(a < b), int(a == b), int(a > b))


def test_z5xp1_like_function():
    net = z5xp1_like()
    for x in (0, 1, 5, 77, 127):
        expected = (6 * x + (x >> 2)) & 0x3FF
        assert to_int(eval_vec(net, vec_assign("x", x, 7))) == expected


def test_nsym9_window():
    net = nsym9()
    rnd = random.Random(3)
    for _ in range(60):
        x = rnd.getrandbits(9)
        got = eval_vec(net, vec_assign("x", x, 9))[0]
        assert got == int(3 <= bin(x).count("1") <= 6)


def test_nsym_validation():
    with pytest.raises(ValueError):
        nsym(5, 4, 2)


def test_nsym_low_zero():
    net = nsym(4, 0, 2)
    for x in range(16):
        got = eval_vec(net, vec_assign("x", x, 4))[0]
        assert got == int(bin(x).count("1") <= 2)


def test_majority():
    net = majority(5)
    for x in range(32):
        got = eval_vec(net, vec_assign("x", x, 5))[0]
        assert got == int(bin(x).count("1") > 2)


def test_parity_tree():
    net = parity_tree(10)
    rnd = random.Random(4)
    for _ in range(30):
        x = rnd.getrandbits(10)
        assert eval_vec(net, vec_assign("x", x, 10))[0] == \
            bin(x).count("1") % 2


def test_sec_corrector_corrects_single_errors():
    n = 8
    net = sec_corrector(n)
    groups = _parity_positions(n)
    rnd = random.Random(9)
    for _ in range(40):
        data = rnd.getrandbits(n)
        checks = [
            sum((data >> m) & 1 for m in members) % 2 for members in groups
        ]
        err = rnd.choice(["none", "data", "check"])
        data_tx, checks_tx = data, list(checks)
        if err == "data":
            data_tx ^= 1 << rnd.randrange(n)
        elif err == "check":
            checks_tx[rnd.randrange(len(groups))] ^= 1
        assign = vec_assign("d", data_tx, n)
        assign.update({f"p{j}": checks_tx[j] for j in range(len(groups))})
        assert to_int(eval_vec(net, assign)) == data, err


def test_c1355_is_expanded_c499():
    base = sec_corrector(8, name="x")
    expanded = c1355_like(8, name="y")
    assert check_equivalence(base, expanded)
    # the expansion uses no XOR gates at all
    assert all(g.func.name != "XOR" for g in expanded.gates.values())
    assert expanded.num_gates > base.num_gates


def test_alu181_add_mode():
    """Select 1001 in arithmetic mode computes A plus B (74181-style)."""
    net = alu181(8)
    rnd = random.Random(5)
    for _ in range(30):
        a, b = rnd.getrandbits(8), rnd.getrandbits(8)
        assign = {**vec_assign("a", a, 8), **vec_assign("b", b, 8),
                  "s0": 1, "s1": 0, "s2": 0, "s3": 1, "m": 0, "cn": 0}
        bits = eval_vec(net, assign)
        total = to_int(bits[:8]) + (bits[8] << 8)
        assert total == a + b, (a, b, total)


def test_alu181_logic_mode_xor():
    """Select 1001 in logic mode computes XOR(a, b) bitwise."""
    net = alu181(4)
    for a in range(16):
        for b in range(16):
            assign = {**vec_assign("a", a, 4), **vec_assign("b", b, 4),
                      "s0": 1, "s1": 0, "s2": 0, "s3": 1, "m": 1, "cn": 0}
            bits = eval_vec(net, assign)
            assert to_int(bits[:4]) == (a ^ b) & 0xF


def test_structured_generators_validate():
    for gen in (lambda: c880_like(6), lambda: priority_controller(6),
                z5xp1_like):
        net = gen()
        net.validate()
        assert net.num_gates > 0


def test_registry():
    assert set(TABLE2_NAMES) <= set(SUITE)
    assert set(SMALL_SUITE) == set(SUITE)
    assert "C6288" in suite_names()
    net = build("9sym", small=True)
    assert net.num_gates > 0
    with pytest.raises(KeyError):
        build("nonesuch")


def test_small_suite_sizes_are_modest():
    for name, gen in SMALL_SUITE.items():
        net = gen()
        net.validate()
        assert net.num_gates <= 450, name


def test_random_control_deterministic():
    from repro.circuits import random_control

    n1 = random_control(10, 50, 5, seed=7)
    n2 = random_control(10, 50, 5, seed=7)
    assert [g.output for g in n1.gates.values()] == \
        [g.output for g in n2.gates.values()]
    assert check_equivalence(n1, n2)
