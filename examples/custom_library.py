"""Bring your own technology library: genlib in, optimized Verilog out.

Shows the full I/O story: parse a user genlib, map a circuit onto it,
run GDO, and export BLIF + structural Verilog.

Run:  python examples/custom_library.py
"""

from repro import GdoConfig, Sta, gdo_optimize
from repro.circuits import carry_select_adder
from repro.io import write_blif, write_verilog
from repro.library import parse_genlib
from repro.synth import script_delay

# A deliberately tiny library: NAND2/NOR2/INV only (plus a buffer), with
# asymmetric rise/fall arcs — the parser keeps the worst arc per pin.
TINY_GENLIB = """
GATE tiny_inv  1.0 o=!a;       PIN * INV 1.0 999 0.8 0.30 1.0 0.35
GATE tiny_buf  1.4 o=a;        PIN * NONINV 1.0 999 1.1 0.25 1.2 0.25
GATE tiny_nand 1.8 o=!(a*b);   PIN * INV 1.1 999 0.9 0.40 1.1 0.45
GATE tiny_nor  2.0 o=!(a+b);   PIN * INV 1.1 999 1.2 0.45 1.4 0.50
"""


def main() -> None:
    lib = parse_genlib(TINY_GENLIB, name="tiny")
    print(f"library 'tiny': {len(lib)} cells:",
          ", ".join(c.name for c in lib))

    source = carry_select_adder(8, block=4)
    mapped = script_delay(source, lib)
    sta = Sta(mapped, lib)
    print(f"\nmapped onto tiny: {mapped.num_gates} gates, "
          f"delay {sta.delay:.2f}")
    used = {g.cell for g in mapped.gates.values() if g.cell}
    print("cells used:", ", ".join(sorted(used)))

    # GDO works with any library; XOR forms are skipped automatically
    # because the library has no XOR cell (Sec. 5: "If XOR-gates are not
    # contained in the library, they can be excluded ...").
    result = gdo_optimize(mapped, lib, GdoConfig(n_words=8))
    s = result.stats
    print(f"\nGDO: delay {s.delay_before:.2f} -> {s.delay_after:.2f} "
          f"({100 * s.delay_reduction:.1f}%), "
          f"literals {s.literals_before} -> {s.literals_after}, "
          f"equivalent={s.equivalent}")

    blif = write_blif(result.net, mapped=True, library=lib)
    verilog = write_verilog(result.net, mapped=True, library=lib)
    print(f"\nBLIF export: {len(blif.splitlines())} lines "
          f"(first 3 shown)")
    print("\n".join("  " + l for l in blif.splitlines()[:3]))
    print(f"Verilog export: {len(verilog.splitlines())} lines "
          f"(first 4 shown)")
    print("\n".join("  " + l for l in verilog.splitlines()[:4]))


if __name__ == "__main__":
    main()
