"""Table-2-style experiment on a 74181-style ALU: delay-oriented
synthesis first, then GDO for the residual delay and area recovery.

The paper's second experiment applies GDO *after* SIS's depth-reduction
script and still gains ~10% delay and ~16% literals — "GDO recovers
area penalties which are due to the depth reduction technique".

Run:  python examples/rewire_alu.py
"""

from repro import GdoConfig, Sta, gdo_optimize, mcnc_like
from repro.circuits import alu181
from repro.synth import script_delay, script_rugged
from repro.timing import enumerate_critical_paths
from repro.verify import check_equivalence


def report(tag, net, lib):
    sta = Sta(net, lib)
    print(f"  {tag:14} gates={net.num_gates:4d} "
          f"literals={net.num_literals:4d} "
          f"area={lib.netlist_area(net):7.1f} delay={sta.delay:7.2f}")
    return sta


def main() -> None:
    lib = mcnc_like()
    source = alu181(8)
    print("== 8-bit 74181-style ALU ==")

    # Area script vs delay script: the classic trade-off.
    area_mapped = script_rugged(source, lib)
    delay_mapped = script_delay(source, lib)
    report("area script", area_mapped, lib)
    sta = report("delay script", delay_mapped, lib)

    paths = enumerate_critical_paths(sta, limit=3)
    print(f"\n{len(paths)} critical path(s) shown, delay {sta.delay:.2f}:")
    for path in paths:
        print("   " + " -> ".join(path))

    print("\nGDO after the delay script (the Table-2 setup):")
    result = gdo_optimize(delay_mapped, lib, GdoConfig(n_words=16))
    s = result.stats
    report("after GDO", result.net, lib)
    print(f"\n  delay reduction    {100 * s.delay_reduction:6.1f}%")
    print(f"  literal reduction  {100 * s.literal_reduction:6.1f}%")
    print(f"  modifications      {s.mods2} OS/IS2 + {s.mods3} OS/IS3")
    print(f"  equivalent         {s.equivalent}")
    assert check_equivalence(source, result.net)

    print("\nModification log:")
    for rec in s.history:
        print(f"  [{rec.phase:5}] {rec.description:42} "
              f"delay {rec.delay_before:6.2f} -> {rec.delay_after:6.2f}")


if __name__ == "__main__":
    main()
