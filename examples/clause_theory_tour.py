"""A tour of the clause theory (Secs. 2-4): C1/C2/C3 clauses, the
theorem correspondences, BPFS filtering, and proof backends.

Run:  python examples/clause_theory_tour.py
"""

from repro.atpg import Fault, is_redundant
from repro.clauses import (
    Candidate, CandidateEnumerator, c1_clauses, c2_clauses, c3_clauses,
)
from repro.library import mcnc_like
from repro.netlist import Branch, Netlist, TwoInputForm
from repro.netlist.gatefunc import AND, XOR
from repro.sim import BitSimulator, ObservabilityEngine
from repro.timing import Sta
from repro.transform import apply_candidate, prove_candidate
from repro.verify import check_equivalence


def demo_net() -> Netlist:
    """A net with a redundancy, a duplicate pair, and an XOR identity."""
    net = Netlist("tour")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("t", "AND", ["a", "b"])
    net.add_gate("u", "OR", ["a", "t"])         # u == a: t-branch redundant
    net.add_gate("na", "INV", ["a"])
    net.add_gate("nb", "INV", ["b"])
    net.add_gate("p", "AND", ["na", "b"])
    net.add_gate("q", "AND", ["a", "nb"])
    net.add_gate("y", "OR", ["p", "q"])          # y == a ^ b
    net.add_gate("o", "AND", ["u", "y"])
    net.set_pos(["o", "y"])
    return net


def main() -> None:
    net = demo_net()
    sim = BitSimulator(net)
    engine = ObservabilityEngine(sim, sim.simulate_exhaustive())

    print("== Clause classes (Sec. 2) ==")
    print("C1:", [c.describe() for c in c1_clauses("x")])
    print("C2:", [c.describe() for c in c2_clauses("x", "y")][:2], "...")
    print("C3:", len(c3_clauses("x", "y", "z")), "clauses")

    # ------------------------------------------------------------------
    print("\n== C1 <-> redundancy (Sec. 3) ==")
    branch = Branch("u", 1)   # the t input of the OR gate
    for clause in c1_clauses(branch):
        print(f"  {clause.describe():24} valid on simulation: "
              f"{clause.holds_on(engine)}")
    fault = Fault(branch, 0)
    print(f"  ATPG on {fault.describe(net)}: "
          f"{'redundant' if is_redundant(net, fault) else 'testable'}")

    # ------------------------------------------------------------------
    print("\n== Theorem 1: OS2 needs two valid C2-clauses ==")
    cand = Candidate(target="y", kind="OS2", sources=("y",))  # placeholder
    # y computes a ^ b; is there a 2-input recomposition? Build IS3 with
    # XOR(a, b) for the o-gate's y input instead:
    cand = Candidate(target=Branch("o", 1), kind="IS3", sources=("a", "b"),
                     form=TwoInputForm(XOR, False, False))
    for clause in cand.clause_combination():
        print(f"  {clause.describe():30} valid: {clause.holds_on(engine)}")
    print("  combination holds (word-parallel):", cand.holds_on(engine))
    print("  proof by SAT miter :", prove_candidate(net, cand, proof="sat"))
    print("  proof by BDD       :", prove_candidate(net, cand, proof="bdd"))

    work = net.copy()
    record = apply_candidate(work, cand, library=mcnc_like())
    print(f"  applied: new gate {record.added_gates}, "
          f"pruned {[g.output for g in record.removed_gates]}")
    print("  still equivalent:", check_equivalence(net, work))

    # ------------------------------------------------------------------
    print("\n== BPFS enumeration with the Sec. 4 filters ==")
    lib = mcnc_like()
    lib.rebind(net)
    sta = Sta(net, lib)
    enum = CandidateEnumerator(net, sta, engine, lib)
    for target in ["u", "y"]:
        cands = enum.all_candidates(target, sta.arrival[target] + 100.0)
        print(f"  target {target}: {len(cands)} surviving PVCCs")
        for cand in cands[:3]:
            print(f"    {cand.describe():34} lds={cand.lds:+.2f}")
    stats = enum.stats
    print(f"  clause-set statistics: pools={stats.pool_size}, "
          f"C2 checked={stats.c2_checked} survived={stats.c2_survived}, "
          f"C3 pairs full={stats.c3_pairs_full} "
          f"checked={stats.c3_pairs_checked} survived={stats.c3_survived}")


if __name__ == "__main__":
    main()
