"""Test-area workflow: ATPG campaign, fault coverage, redundancy map.

The paper generalizes test-area techniques to optimization; this example
runs the underlying test-area flow itself on a benchmark circuit and
shows the connection: the redundant faults found by the campaign are
exactly the valid C1-clauses GDO's redundancy removal would exploit.

Run:  python examples/atpg_campaign.py
"""

from repro.atpg import compact_tests, full_fault_list, run_campaign
from repro.circuits import priority_controller
from repro.clauses import c1_clauses
from repro.library import mcnc_like
from repro.synth import script_rugged


def main() -> None:
    lib = mcnc_like()
    net = script_rugged(priority_controller(6), lib)
    print(f"circuit: {net.name}, {net.num_gates} gates, "
          f"{len(net.pis)} PIs, {len(net.pos)} POs")

    faults = full_fault_list(net)
    print(f"collapsed stuck-at fault list: {len(faults)} faults")

    result = run_campaign(net)
    print(f"\nATPG campaign ({result.cpu_seconds:.1f}s):")
    print(f"  detected   : {result.detected}")
    print(f"  redundant  : {result.redundant} "
          f"({100 * result.redundancy_ratio:.1f}% of all faults)")
    print(f"  aborted    : {result.aborted}")
    print(f"  coverage   : {100 * result.coverage:.1f}% of testable faults")
    print(f"  test set   : {len(result.tests)} vectors")

    compacted = compact_tests(net, result.tests)
    print(f"  compacted  : {len(compacted)} vectors "
          f"(reverse-order compaction)")

    if result.redundant_faults:
        print("\nredundant faults == valid C1-clauses (Sec. 3):")
        for fault in result.redundant_faults[:8]:
            # the C1-clause corresponding to this untestable fault
            clause = c1_clauses(fault.site)[1 if fault.value else 0]
            print(f"  {fault.describe(net):38} <->  {clause.describe()}")
    else:
        print("\nno redundant faults — the mapped circuit is fully "
              "testable (GDO would find only observability-conditional "
              "rewirings here).")


if __name__ == "__main__":
    main()
