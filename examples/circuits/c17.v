module c17 (
  input  G1,
  input  G2,
  input  G3,
  input  G6,
  input  G7,
  output po0,
  output po1
);
  wire G10, G11, G16, G19, G22, G23;
  nand u0 (G10, G1, G3);
  nand u1 (G11, G3, G6);
  nand u2 (G16, G2, G11);
  nand u3 (G19, G11, G7);
  nand u4 (G22, G10, G16);
  nand u5 (G23, G16, G19);
  assign po0 = G22;
  assign po1 = G23;
endmodule
