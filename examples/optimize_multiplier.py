"""Delay-optimize an array multiplier (the C6288 experiment, scaled).

C6288 — a 16x16 NOR-cell array multiplier — is the paper's flagship
result: 22% delay reduction after technology mapping.  This example runs
the same pipeline on a configurable width (default 6x6; pass a width as
the first argument, e.g. ``python examples/optimize_multiplier.py 8``).

The multiplier is built with the ISCAS NOR-cell structure, synthesized
with the 1995-era area script (sweep + tree mapping, like SIS), then
globally delay-optimized with GDO.
"""

import sys
import time

from repro import GdoConfig, Sta, gdo_optimize, mcnc_like, script_rugged
from repro.circuits import array_multiplier
from repro.timing import longest_path
from repro.verify import check_equivalence


def main(width: int = 6) -> None:
    lib = mcnc_like()
    source = array_multiplier(width, style="nor")
    print(f"== {width}x{width} NOR-cell array multiplier ==")
    print(f"source: {source.num_gates} gates, depth {source.depth()}")

    mapped = script_rugged(source, lib)  # era='1995': sweep + tree map
    sta = Sta(mapped, lib)
    print(f"mapped: {mapped.num_gates} gates, "
          f"{mapped.num_literals} literals, delay {sta.delay:.2f}")
    print("critical path:",
          " -> ".join(longest_path(sta)[:10]),
          "..." if len(longest_path(sta)) > 10 else "")

    start = time.perf_counter()
    result = gdo_optimize(mapped, lib, GdoConfig(n_words=8))
    elapsed = time.perf_counter() - start
    s = result.stats

    print(f"\nGDO finished in {elapsed:.1f}s "
          f"({s.rounds} rounds, {s.proofs_passed}/{s.proofs_attempted} "
          f"PVCC proofs passed)")
    print(f"  delay    {s.delay_before:8.2f} -> {s.delay_after:8.2f}   "
          f"({100 * s.delay_reduction:.1f}% reduction)")
    print(f"  literals {s.literals_before:8d} -> {s.literals_after:8d}")
    print(f"  gates    {s.gates_before:8d} -> {s.gates_after:8d}")
    print(f"  mods     OS/IS2: {s.mods2}   OS/IS3: {s.mods3}")
    print(f"  equivalent (random sim + SAT miter): {s.equivalent}")

    # independent re-verification against the *source* netlist
    print("re-verified against the original generator:",
          check_equivalence(source, result.net))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
