"""Quickstart: the paper's Figure-1 circuit, clause analysis, and a
first GDO run.

Run:  python examples/quickstart.py
"""

from repro import Sta, gdo_optimize, mcnc_like, script_rugged
from repro.circuits import nsym
from repro.clauses import (
    circuit_characteristic_clauses, gate_characteristic_clauses,
    structural_observability_clauses,
)
from repro.netlist import Branch, Netlist
from repro.sim import BitSimulator, ObservabilityEngine


def figure1() -> Netlist:
    """d = AND(a, b); e = INV(c); f = OR(d, e) — Fig. 1 of the paper."""
    net = Netlist("figure1")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("d", "AND", ["a", "b"])
    net.add_gate("e", "INV", ["c"])
    net.add_gate("f", "OR", ["d", "e"])
    net.set_pos(["f"])
    return net


def main() -> None:
    net = figure1()
    print("== Figure 1 circuit ==")
    print(net, "\n")

    print("Characteristic clauses of each gate (Sec. 2):")
    for out in net.topo_order():
        rendered = " . ".join(
            c.describe() for c in gate_characteristic_clauses(net, out)
        )
        print(f"  {out}: {rendered}")

    print("\nStructural observability clauses of the AND gate:")
    for clause in structural_observability_clauses(net, "d"):
        print(f"  {clause.describe()}")

    # Validity is checked word-parallel over simulated vectors.
    sim = BitSimulator(net)
    engine = ObservabilityEngine(sim, sim.simulate_exhaustive())
    print("\nAll characteristic clauses valid on exhaustive simulation:",
          all(c.holds_on(engine)
              for c in circuit_characteristic_clauses(net)))

    obs_a = engine.branch_observability(Branch("d", 0))
    print("O[a@AND] word (a observable iff b=1 and c=1):",
          format(int(obs_a[0]) & 0xFF, "08b"))

    # ------------------------------------------------------------------
    # A first real optimization: 7-input symmetric function.
    # ------------------------------------------------------------------
    print("\n== GDO on a 7-input symmetric function ==")
    lib = mcnc_like()
    mapped = script_rugged(nsym(7, 2, 5), lib)   # the SIS stand-in
    print("mapped:  ", Sta(mapped, lib).report().replace("\n", "  "))
    result = gdo_optimize(mapped, lib)
    s = result.stats
    print("optimized:", Sta(result.net, lib).report().replace("\n", "  "))
    print(f"delay {s.delay_before:.2f} -> {s.delay_after:.2f} "
          f"({100 * s.delay_reduction:.1f}% reduction), "
          f"literals {s.literals_before} -> {s.literals_after}, "
          f"mods OS/IS2={s.mods2} OS/IS3={s.mods3}, "
          f"equivalence verified: {s.equivalent}")
    print("\nFirst modifications applied:")
    for rec in s.history[:5]:
        print(f"  [{rec.phase}] {rec.description}  "
              f"(delay {rec.delay_before:.2f} -> {rec.delay_after:.2f})")


if __name__ == "__main__":
    main()
